//! Crash-proof experiment harness: `repro-all` runs every experiment
//! under `catch_unwind`, keeps going past failures, and reports a
//! PASS/FAIL summary so one broken experiment can't hide the rest.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crate::Opts;

/// One runnable experiment: a name plus the module `run` function.
pub struct Experiment {
    /// Short name (matches the `repro-*` binary).
    pub name: &'static str,
    /// The experiment entry point.
    pub runner: fn(&Opts) -> String,
}

/// Every experiment `repro-all` chains, in its canonical order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "latency",
            runner: crate::latency::run,
        },
        Experiment {
            name: "fig2",
            runner: crate::fig2::run,
        },
        Experiment {
            name: "fig3",
            runner: crate::fig3::run,
        },
        Experiment {
            name: "fig4",
            runner: crate::fig4::run,
        },
        Experiment {
            name: "table1",
            runner: crate::table1::run,
        },
        Experiment {
            name: "table2",
            runner: crate::table2::run,
        },
        Experiment {
            name: "fig7",
            runner: crate::fig7::run,
        },
        Experiment {
            name: "fig6",
            runner: crate::fig6::run,
        },
        Experiment {
            name: "fig8",
            runner: crate::fig8::run,
        },
        Experiment {
            name: "scale",
            runner: crate::scale::run,
        },
        Experiment {
            name: "cache",
            runner: crate::cachestudy::run,
        },
        Experiment {
            name: "sensitivity",
            runner: crate::sensitivity::run,
        },
        Experiment {
            name: "bus",
            runner: crate::bus::run,
        },
        Experiment {
            name: "faults",
            runner: crate::faults::run,
        },
        Experiment {
            name: "backend",
            runner: crate::backend::run,
        },
        Experiment {
            name: "trace",
            runner: crate::trace::run,
        },
        Experiment {
            name: "race",
            runner: crate::race::run,
        },
        Experiment {
            name: "protocol",
            runner: crate::protocol::run,
        },
        Experiment {
            name: "recovery",
            runner: crate::recovery::run,
        },
        Experiment {
            name: "insight",
            runner: crate::insight::run,
        },
    ]
}

/// How one experiment ended.
pub struct Outcome {
    /// Experiment name.
    pub name: &'static str,
    /// `Err(panic message)` when the experiment panicked.
    pub result: Result<(), String>,
    /// Host seconds spent.
    pub host_secs: f64,
}

/// Results of a full harness sweep.
pub struct Summary {
    /// Per-experiment outcomes, in run order.
    pub outcomes: Vec<Outcome>,
}

impl Summary {
    /// True when every experiment completed without panicking.
    pub fn all_passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// The PASS/FAIL table `repro-all` prints last.
    pub fn render(&self) -> String {
        let mut out = String::from("\nexperiment summary\n==================\n");
        for o in &self.outcomes {
            match &o.result {
                Ok(()) => {
                    out.push_str(&format!("  PASS  {:12} {:6.1}s\n", o.name, o.host_secs));
                }
                Err(msg) => {
                    out.push_str(&format!(
                        "  FAIL  {:12} {:6.1}s  {}\n",
                        o.name, o.host_secs, msg
                    ));
                }
            }
        }
        let failed = self.outcomes.iter().filter(|o| o.result.is_err()).count();
        out.push_str(&format!(
            "{} passed, {} failed, {} total\n",
            self.outcomes.len() - failed,
            failed,
            self.outcomes.len()
        ));
        out
    }
}

impl Summary {
    /// Machine-readable form of the sweep: the harness options plus
    /// host wall-clock and PASS/FAIL per experiment (the
    /// `BENCH_repro.json` that ci.sh archives to track the perf
    /// trajectory). Experiment names are static identifiers and panic
    /// messages are sanitized, so no JSON escaping is needed beyond
    /// quoting.
    pub fn to_json(&self, opts: &Opts) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n  \"experiment\": \"repro\",\n",
            crate::BENCH_SCHEMA_VERSION
        ));
        out.push_str(&format!(
            "  \"backend\": \"{}\",\n  \"full\": {},\n  \"steps\": {},\n",
            opts.backend.name(),
            opts.full,
            opts.steps
        ));
        out.push_str(&format!(
            "  \"total_host_secs\": {:.3},\n  \"passed\": {},\n  \"experiments\": [\n",
            self.outcomes.iter().map(|o| o.host_secs).sum::<f64>(),
            self.all_passed()
        ));
        for (i, o) in self.outcomes.iter().enumerate() {
            let comma = if i + 1 < self.outcomes.len() { "," } else { "" };
            let error = match &o.result {
                Ok(()) => String::new(),
                Err(msg) => format!(
                    ", \"error\": \"{}\"",
                    msg.replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace('\n', " ")
                ),
            };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"host_secs\": {:.3}, \"pass\": {}{error}}}{comma}\n",
                o.name,
                o.host_secs,
                o.result.is_ok()
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write the text summary and the machine-readable JSON under
    /// `dir` (created if needed): `summary.txt` and
    /// `BENCH_repro.json`. Returns the JSON path.
    pub fn write_reports(
        &self,
        opts: &Opts,
        dir: &std::path::Path,
    ) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("summary.txt"), self.render())?;
        let json = dir.join("BENCH_repro.json");
        std::fs::write(&json, self.to_json(opts))?;
        Ok(json)
    }
}

/// Render a caught panic payload (the `&str`/`String` forms `panic!`
/// and `assert!` produce; anything else gets a generic label).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `experiments` in order, isolating each behind `catch_unwind` so
/// a panicking experiment cannot take the rest of the sweep down.
///
/// When `report_dir` is given, `summary.txt` and `BENCH_repro.json`
/// are rewritten after *every* experiment, so a sweep killed hard
/// (OOM, SIGKILL, power) still leaves a report covering every row
/// that ran — including the error text of any row that panicked.
pub fn run_experiments_reporting(
    experiments: &[Experiment],
    opts: &Opts,
    report_dir: Option<&std::path::Path>,
) -> Summary {
    let mut summary = Summary {
        outcomes: Vec::new(),
    };
    for e in experiments {
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            (e.runner)(opts);
        }))
        .map_err(panic_message);
        if let Err(msg) = &result {
            eprintln!("[{} FAILED: {msg}]", e.name);
        }
        summary.outcomes.push(Outcome {
            name: e.name,
            result,
            host_secs: t0.elapsed().as_secs_f64(),
        });
        if let Some(dir) = report_dir {
            if let Err(err) = summary.write_reports(opts, dir) {
                eprintln!("[could not write reports under {}: {err}]", dir.display());
            }
        }
    }
    summary
}

/// [`run_experiments_reporting`] without incremental reports.
pub fn run_experiments(experiments: &[Experiment], opts: &Opts) -> Summary {
    run_experiments_reporting(experiments, opts, None)
}

/// Run the full canonical sweep.
pub fn run_all(opts: &Opts) -> Summary {
    run_experiments(&all_experiments(), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_run(_: &Opts) -> String {
        "fine".to_string()
    }

    fn panicking_run(_: &Opts) -> String {
        panic!("injected failure for the harness test");
    }

    #[test]
    fn a_panicking_experiment_does_not_stop_the_rest() {
        let exps = [
            Experiment {
                name: "first",
                runner: ok_run,
            },
            Experiment {
                name: "broken",
                runner: panicking_run,
            },
            Experiment {
                name: "last",
                runner: ok_run,
            },
        ];
        let summary = run_experiments(&exps, &Opts::default());
        assert_eq!(summary.outcomes.len(), 3, "all three must run");
        assert!(summary.outcomes[0].result.is_ok());
        let err = summary.outcomes[1].result.as_ref().unwrap_err();
        assert!(err.contains("injected failure"), "got: {err}");
        assert!(summary.outcomes[2].result.is_ok(), "ran past the failure");
        assert!(!summary.all_passed());
        let rendered = summary.render();
        assert!(rendered.contains("FAIL  broken"));
        assert!(rendered.contains("2 passed, 1 failed, 3 total"));
    }

    #[test]
    fn all_green_summary_passes() {
        let exps = [Experiment {
            name: "only",
            runner: ok_run,
        }];
        let summary = run_experiments(&exps, &Opts::default());
        assert!(summary.all_passed());
        assert!(summary.render().contains("PASS  only"));
    }

    #[test]
    fn json_report_lists_every_experiment_with_wall_clock() {
        let exps = [
            Experiment {
                name: "only",
                runner: ok_run,
            },
            Experiment {
                name: "broken",
                runner: panicking_run,
            },
        ];
        let summary = run_experiments(&exps, &Opts::default());
        let j = summary.to_json(&Opts::default());
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"experiment\": \"repro\""));
        assert!(j.contains("\"backend\": \"cycle\""));
        assert!(j.contains("\"name\": \"only\", \"host_secs\""));
        assert!(j.contains("\"pass\": false"));
        assert!(j.contains("\"passed\": false"));
        assert!(
            j.contains("\"error\": \"injected failure for the harness test\""),
            "failed rows must carry their error text: {j}"
        );
        assert!(j.trim_end().ends_with('}'));
    }

    #[test]
    fn incremental_reports_survive_a_failing_row() {
        let exps = [
            Experiment {
                name: "first",
                runner: ok_run,
            },
            Experiment {
                name: "broken",
                runner: panicking_run,
            },
        ];
        let dir = std::env::temp_dir().join("spp-repro-incremental-test");
        let _ = std::fs::remove_dir_all(&dir);
        let summary = run_experiments_reporting(&exps, &Opts::default(), Some(&dir));
        assert!(!summary.all_passed());
        let j = std::fs::read_to_string(dir.join("BENCH_repro.json")).unwrap();
        assert!(j.contains("\"name\": \"first\""));
        assert!(j.contains("\"name\": \"broken\""));
        assert!(j.contains("\"error\": \"injected failure"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reports_land_under_the_requested_directory() {
        let exps = [Experiment {
            name: "only",
            runner: ok_run,
        }];
        let summary = run_experiments(&exps, &Opts::default());
        let dir = std::env::temp_dir().join("spp-repro-report-test");
        let json = summary.write_reports(&Opts::default(), &dir).unwrap();
        assert!(json.ends_with("BENCH_repro.json"));
        assert!(dir.join("summary.txt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_canonical_sweep_lists_every_module() {
        let names: Vec<&str> = all_experiments().iter().map(|e| e.name).collect();
        for expected in ["latency", "fig6", "fig8", "faults", "bus", "backend"] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }
}
