//! Self-healing coherence campaign (`repro-recovery`): sweep
//! protocol × transient-fault kind × intensity over the PIC, N-body,
//! and FEM applications, and enforce the recovery contract in-run:
//! a run that hits seeded transient coherence faults (dropped or
//! duplicated invalidations, lost Dragon updates, stale directory
//! acks, corrupted line state) must detect them, scrub them through
//! the machine's bounded retry path, and finish with elapsed cycles,
//! the machine clock, the coherence-state digest, and every memory
//! counter **bit-identical** to the fault-free run — only the
//! `recoveries`/`recovery_retries` counters may differ. A cell that
//! diverges, escalates, or panics is delta-debugged with the chaos
//! shrinker to a minimal non-recovering plan.
//!
//! The machine-readable summary is `BENCH_recovery.json` (written by
//! the `repro-recovery` binary under `target/repro`, or
//! `SPP_REPRO_DIR`), integers only so two runs diff byte-for-byte.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::chaos::{shrink, Workload};
use crate::harness::panic_message;
use crate::{emit, Opts, Table};
use fem::{Coding, SharedFem};
use nbody::{NbodyProblem, SharedNbody};
use pic::{PicProblem, SharedPic};
use spp_core::{Cycles, FaultEvent, FaultPlan, Machine, MemStats, ProtocolKind};
use spp_runtime::{Placement, Runtime, Team};

/// Probability of each transient kind at standard intensity.
pub const STANDARD_PROB: f64 = 0.05;
/// Probability at high intensity (the `--full` grid adds these cells).
pub const HIGH_PROB: f64 = 0.15;
/// Probability that a detected fault survives one scrub attempt —
/// low enough that the in-machine retry path always wins within its
/// budget, high enough that multi-attempt scrubs actually occur.
pub const PERSIST_PROB: f64 = 0.1;

/// The deterministic signature the recovery contract compares: every
/// observable of a run except the recovery counters themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSignature {
    /// Elapsed simulated cycles over the measured steps.
    pub elapsed: Cycles,
    /// Final machine clock.
    pub clock: Cycles,
    /// FNV-1a digest of the full coherence state (caches, directories,
    /// GCBs, SCI lists, snoop filter).
    pub digest: u64,
    /// Final memory-system counters.
    pub stats: MemStats,
}

/// Run one workload under `proto` with an optional fault plan and
/// return its signature. Panics propagate to the caller (the campaign
/// wraps this in `catch_unwind`; an exhausted scrub budget surfaces
/// here as the machine's `RecoveryExhausted` panic).
fn workload_run(
    w: Workload,
    proto: ProtocolKind,
    plan: Option<FaultPlan>,
    steps: usize,
) -> RunSignature {
    let mut m = Machine::spp1000(2).with_protocol(proto);
    if let Some(p) = plan {
        m = m.with_faults(p);
    }
    let mut rt = Runtime::new(m);
    let elapsed = match w {
        Workload::Pic => {
            let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
            let mut sim = SharedPic::new(&mut rt, PicProblem::with_mesh(8, 8, 8), &team);
            sim.step(&mut rt, &team); // warm-up
            sim.run(&mut rt, &team, steps).elapsed
        }
        Workload::Nbody => {
            let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
            let mut sim = SharedNbody::new(&mut rt, NbodyProblem::with_n(1024), &team);
            sim.step(&mut rt, &team);
            sim.run(&mut rt, &team, steps).elapsed
        }
        Workload::Fem => {
            let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
            let mut sim =
                SharedFem::new(&mut rt, fem::structured(32, 32), Coding::ScatterAdd, &team);
            sim.step(&mut rt, &team, 0.3);
            sim.run(&mut rt, &team, 0.3, steps).elapsed
        }
    };
    RunSignature {
        elapsed,
        clock: rt.machine.clock(),
        digest: rt.machine.coherence_digest(),
        stats: rt.machine.stats,
    }
}

/// One campaign cell: a (workload, protocol, fault-kind) triple at a
/// given intensity.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The application.
    pub workload: Workload,
    /// The coherence protocol under test.
    pub protocol: ProtocolKind,
    /// Fault-plan seed.
    pub seed: u64,
    /// The transient events layered onto the plan (one kind plus the
    /// shared persistence stream).
    pub events: Vec<FaultEvent>,
}

/// Observations from a cell that upheld the recovery contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellOutcome {
    /// Elapsed simulated cycles (bit-equal to the fault-free run).
    pub elapsed: Cycles,
    /// Transient faults detected and fully scrubbed.
    pub recoveries: u64,
    /// Scrub retry attempts spent across all recoveries.
    pub retries: u64,
}

/// One grid cell's result.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: Cell,
    /// Observations when the contract held.
    pub outcome: Option<CellOutcome>,
    /// Contract violation / panic message otherwise.
    pub failure: Option<String>,
    /// Minimal non-recovering event subset (only on shrinkable
    /// failures — a vacuous cell that injected nothing is reported
    /// without a reproducer).
    pub shrunk: Option<Vec<FaultEvent>>,
}

impl CellResult {
    /// Did the cell uphold the contract?
    pub fn pass(&self) -> bool {
        self.failure.is_none()
    }
}

/// Run one cell against a precomputed fault-free signature: the
/// faulted run must finish (no escalation) and match the baseline on
/// everything but the recovery counters. Returns `Err(message)` on
/// any divergence, escalation, or panic.
pub fn check_cell(cell: &Cell, baseline: &RunSignature, steps: usize) -> Result<MemStats, String> {
    let plan = FaultPlan::from_events(cell.seed, &cell.events);
    let got = catch_unwind(AssertUnwindSafe(|| {
        workload_run(cell.workload, cell.protocol, Some(plan), steps)
    }))
    .map_err(panic_message)?;
    if got.elapsed != baseline.elapsed {
        return Err(format!(
            "elapsed diverged: fault-free {} vs recovered {}",
            baseline.elapsed, got.elapsed
        ));
    }
    if got.clock != baseline.clock {
        return Err(format!(
            "machine clock diverged: fault-free {} vs recovered {}",
            baseline.clock, got.clock
        ));
    }
    if got.digest != baseline.digest {
        return Err(format!(
            "coherence-state digest diverged: fault-free {:#018x} vs recovered {:#018x}",
            baseline.digest, got.digest
        ));
    }
    if !got.stats.eq_modulo_recovery(&baseline.stats) {
        return Err("memory counters diverged beyond recoveries/recovery_retries".to_string());
    }
    Ok(got.stats)
}

/// The transient fault kinds applicable to `proto`, as
/// `(label, event)` pairs at probability `prob`.
pub fn fault_kinds(proto: ProtocolKind, prob: f64) -> Vec<(&'static str, FaultEvent)> {
    let mut kinds = vec![
        ("inval-drop", FaultEvent::InvalDrop { prob }),
        ("inval-dup", FaultEvent::InvalDup { prob }),
        ("inval-delay", FaultEvent::InvalDelay { prob }),
        ("line-corrupt", FaultEvent::LineCorrupt { prob }),
    ];
    match proto {
        ProtocolKind::Dragon => kinds.push(("update-loss", FaultEvent::UpdateLoss { prob })),
        ProtocolKind::DashSci => kinds.push(("ack-stale", FaultEvent::AckStale { prob })),
        ProtocolKind::Mesi => {}
    }
    kinds
}

fn cell(w: Workload, proto: ProtocolKind, event: FaultEvent) -> Cell {
    Cell {
        workload: w,
        protocol: proto,
        seed: 17,
        events: vec![event, FaultEvent::TransientPersist { prob: PERSIST_PROB }],
    }
}

/// The campaign grid. The smoke grid covers **every**
/// protocol × fault-kind pair at standard intensity, rotating the
/// application so each workload appears; `full` crosses every pair
/// with every workload and adds a high-intensity sweep.
pub fn default_grid(full: bool) -> Vec<Cell> {
    const APPS: [Workload; 3] = [Workload::Pic, Workload::Nbody, Workload::Fem];
    let mut cells = Vec::new();
    if full {
        for proto in ProtocolKind::ALL {
            for (_, ev) in fault_kinds(proto, STANDARD_PROB) {
                for w in APPS {
                    cells.push(cell(w, proto, ev));
                }
            }
        }
        let mut i = 0usize;
        for proto in ProtocolKind::ALL {
            for (_, ev) in fault_kinds(proto, HIGH_PROB) {
                cells.push(cell(APPS[i % APPS.len()], proto, ev));
                i += 1;
            }
        }
    } else {
        let mut i = 0usize;
        for proto in ProtocolKind::ALL {
            for (_, ev) in fault_kinds(proto, STANDARD_PROB) {
                cells.push(cell(APPS[i % APPS.len()], proto, ev));
                i += 1;
            }
        }
    }
    cells
}

/// A completed campaign.
pub struct Campaign {
    /// Per-cell results, in grid order.
    pub results: Vec<CellResult>,
    /// Measured steps per cell.
    pub steps: usize,
    /// Whether the full grid ran.
    pub full: bool,
}

/// Run the campaign over `cells`, caching one fault-free baseline per
/// (workload, protocol) pair.
pub fn run_campaign(cells: &[Cell], steps: usize, full: bool) -> Campaign {
    let mut baselines: Vec<((Workload, ProtocolKind), RunSignature)> = Vec::new();
    let mut baseline_for = |w: Workload, p: ProtocolKind| -> RunSignature {
        match baselines.iter().find(|(k, _)| *k == (w, p)) {
            Some((_, b)) => *b,
            None => {
                let b = workload_run(w, p, None, steps);
                baselines.push(((w, p), b));
                b
            }
        }
    };
    let results = cells
        .iter()
        .map(|c| {
            let baseline = baseline_for(c.workload, c.protocol);
            match check_cell(c, &baseline, steps) {
                Ok(stats) if stats.recoveries == 0 => CellResult {
                    cell: c.clone(),
                    outcome: None,
                    failure: Some(
                        "vacuous cell: no transient fault was ever injected and recovered"
                            .to_string(),
                    ),
                    shrunk: None,
                },
                Ok(stats) => CellResult {
                    cell: c.clone(),
                    outcome: Some(CellOutcome {
                        elapsed: baseline.elapsed,
                        recoveries: stats.recoveries,
                        retries: stats.recovery_retries,
                    }),
                    failure: None,
                    shrunk: None,
                },
                Err(msg) => {
                    // Delta-debug the non-recovering plan to a minimal
                    // reproducer (an empty or recovery-clean subset
                    // passes the predicate, so shrinking terminates).
                    let shrunk = shrink(&c.events, |ev| {
                        let sub = Cell {
                            events: ev.to_vec(),
                            ..c.clone()
                        };
                        check_cell(&sub, &baseline, steps).is_err()
                    });
                    CellResult {
                        cell: c.clone(),
                        outcome: None,
                        failure: Some(msg),
                        shrunk: Some(shrunk),
                    }
                }
            }
        })
        .collect();
    Campaign {
        results,
        steps,
        full,
    }
}

impl Campaign {
    /// True when every cell upheld the recovery contract.
    pub fn passed(&self) -> bool {
        self.results.iter().all(|r| r.pass())
    }

    /// Total recoveries across all passing cells.
    pub fn total_recoveries(&self) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.outcome.as_ref())
            .map(|o| o.recoveries)
            .sum()
    }

    /// The human-readable campaign table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&[
            "workload",
            "protocol",
            "fault",
            "result",
            "cycles",
            "recoveries",
            "retries",
        ]);
        for r in &self.results {
            let kind = r.cell.events.first().map(|e| e.label()).unwrap_or("none");
            match (&r.outcome, &r.failure) {
                (Some(o), None) => t.row(vec![
                    r.cell.workload.label().to_string(),
                    r.cell.protocol.label().to_string(),
                    kind.to_string(),
                    "recovered".to_string(),
                    o.elapsed.to_string(),
                    o.recoveries.to_string(),
                    o.retries.to_string(),
                ]),
                (_, Some(msg)) => {
                    let shrunk = r
                        .shrunk
                        .as_ref()
                        .map(|ev| ev.iter().map(|e| e.desc()).collect::<Vec<_>>().join(" + "))
                        .unwrap_or_default();
                    t.row(vec![
                        r.cell.workload.label().to_string(),
                        r.cell.protocol.label().to_string(),
                        kind.to_string(),
                        format!("FAIL [{shrunk}] {msg}"),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                    ]);
                }
                (None, None) => unreachable!("cell with neither outcome nor failure"),
            }
        }
        t.render()
    }

    /// Machine-readable form (`BENCH_recovery.json`). Integers only —
    /// the probabilities live inside event-description strings — so
    /// two identical campaigns produce byte-identical files.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n  \"experiment\": \"recovery\",\n",
            crate::BENCH_SCHEMA_VERSION
        ));
        out.push_str(&format!(
            "  \"full\": {},\n  \"steps\": {},\n  \"cells\": {},\n  \"passed\": {},\n  \"total_recoveries\": {},\n",
            self.full,
            self.steps,
            self.results.len(),
            self.passed(),
            self.total_recoveries()
        ));
        out.push_str("  \"grid\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let events = r
                .cell
                .events
                .iter()
                .map(|e| format!("\"{}\"", e.desc()))
                .collect::<Vec<_>>()
                .join(", ");
            let head = format!(
                "\"workload\": \"{}\", \"protocol\": \"{}\", \"seed\": {}, \"events\": [{events}]",
                r.cell.workload.label(),
                r.cell.protocol.label(),
                r.cell.seed,
            );
            match &r.outcome {
                Some(o) => out.push_str(&format!(
                    "    {{{head}, \"pass\": true, \"elapsed\": {}, \
                     \"recoveries\": {}, \"retries\": {}}}{comma}\n",
                    o.elapsed, o.recoveries, o.retries
                )),
                None => {
                    let msg = r
                        .failure
                        .as_deref()
                        .unwrap_or("")
                        .replace('\\', "\\\\")
                        .replace('"', "\\\"")
                        .replace('\n', " ");
                    let shrunk = r
                        .shrunk
                        .as_ref()
                        .map(|ev| {
                            ev.iter()
                                .map(|e| format!("\"{}\"", e.desc()))
                                .collect::<Vec<_>>()
                                .join(", ")
                        })
                        .unwrap_or_default();
                    out.push_str(&format!(
                        "    {{{head}, \"pass\": false, \"failure\": \"{msg}\", \
                         \"reproducer\": [{shrunk}]}}{comma}\n",
                    ));
                }
            }
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_recovery.json` under `dir` (created if needed).
    pub fn write_report(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let json = dir.join("BENCH_recovery.json");
        std::fs::write(&json, self.to_json())?;
        Ok(json)
    }
}

/// Run the default campaign for `o`.
pub fn campaign(o: &Opts) -> Campaign {
    run_campaign(&default_grid(o.full), o.steps, o.full)
}

/// Regenerate the recovery-campaign report: write
/// `BENCH_recovery.json`, then panic when any cell broke the
/// recovery contract so the harness records a FAIL.
pub fn run(o: &Opts) -> String {
    let c = campaign(o);
    let report = match c.write_report(&crate::repro_dir()) {
        Ok(json) => format!("[report written to {}]", json.display()),
        Err(e) => format!("[could not write report: {e}]"),
    };
    let text = emit(
        "repro-recovery: transient-fault recovery contract",
        &format!(
            "{}\nEvery cell seeds one transient coherence-fault kind into a real\n\
             application and requires the machine's detect-and-retry path to\n\
             finish bit-identical to the fault-free run (elapsed cycles, clock,\n\
             coherence-state digest, and all counters except recoveries/retries).\n\
             Non-recovering plans are delta-debugged to minimal reproducers.\n\
             campaign passed: {} ({} transient faults recovered)\n{report}",
            c.render(),
            c.passed(),
            c.total_recoveries()
        ),
    );
    assert!(c.passed(), "recovery campaign failed:\n{}", c.render());
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_covers_every_protocol_kind_pair() {
        let grid = default_grid(false);
        assert_eq!(grid.len(), 14); // 5 dash-sci + 4 mesi + 5 dragon
        for proto in ProtocolKind::ALL {
            for (label, _) in fault_kinds(proto, STANDARD_PROB) {
                assert!(
                    grid.iter().any(|c| c.protocol == proto
                        && c.events.first().is_some_and(|e| e.label() == label)),
                    "missing {proto} x {label}"
                );
            }
        }
        // Every cell carries the persistence stream so multi-attempt
        // scrubs happen.
        assert!(grid
            .iter()
            .all(|c| matches!(c.events[1], FaultEvent::TransientPersist { .. })));
    }

    #[test]
    fn a_recovering_cell_matches_its_fault_free_baseline() {
        let c = cell(
            Workload::Fem,
            ProtocolKind::Mesi,
            FaultEvent::InvalDup {
                prob: STANDARD_PROB,
            },
        );
        let baseline = workload_run(c.workload, c.protocol, None, 1);
        let stats = check_cell(&c, &baseline, 1).expect("contract must hold");
        assert!(stats.recoveries > 0, "cell never exercised recovery");
    }

    #[test]
    fn a_diverging_baseline_is_reported_with_a_reproducer() {
        // Hand the checker a wrong baseline: the mismatch must be
        // caught, and the shrinker must produce a subset that still
        // "fails" against that baseline.
        let c = cell(
            Workload::Pic,
            ProtocolKind::DashSci,
            FaultEvent::InvalDrop {
                prob: STANDARD_PROB,
            },
        );
        let mut bogus = workload_run(c.workload, c.protocol, None, 1);
        bogus.digest ^= 1;
        let err = check_cell(&c, &bogus, 1).expect_err("must diverge");
        assert!(err.contains("digest"), "{err}");
        let campaign = {
            let baseline = bogus;
            let shrunk = shrink(&c.events, |ev| {
                let sub = Cell {
                    events: ev.to_vec(),
                    ..c.clone()
                };
                check_cell(&sub, &baseline, 1).is_err()
            });
            // Every subset diverges from a corrupted digest, so the
            // greedy pass shrinks to empty.
            assert!(shrunk.is_empty());
            Campaign {
                results: vec![CellResult {
                    cell: c,
                    outcome: None,
                    failure: Some(err),
                    shrunk: Some(shrunk),
                }],
                steps: 1,
                full: false,
            }
        };
        assert!(!campaign.passed());
        let j = campaign.to_json();
        assert!(j.contains("\"pass\": false"), "{j}");
        assert!(j.contains("\"reproducer\": []"), "{j}");
    }

    #[test]
    fn json_is_integers_only_and_deterministic() {
        let cells = default_grid(false)
            .into_iter()
            .filter(|c| c.workload == Workload::Pic && c.protocol == ProtocolKind::Mesi)
            .collect::<Vec<_>>();
        assert!(!cells.is_empty());
        let a = run_campaign(&cells, 1, false);
        assert!(a.passed(), "{}", a.render());
        let b = run_campaign(&cells, 1, false);
        assert_eq!(a.to_json(), b.to_json());
        // No bare floats outside the quoted event descriptions.
        for line in a.to_json().lines() {
            let mut outside = String::new();
            let mut in_str = false;
            for ch in line.chars() {
                match ch {
                    '"' => in_str = !in_str,
                    c if !in_str => outside.push(c),
                    _ => {}
                }
            }
            assert!(!outside.contains('.'), "float leaked into JSON: {line}");
        }
    }
}
