//! Regenerates the paper's scale data as a one-cell supervised
//! scenario fleet (crash-contained, PASS/FAIL classified).
//! Usage: `repro-scale [--full] [--steps N] [--backend cycle|fast]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("scale"));
}
