//! Scale-out prediction to the full 128-processor configuration (the
//! paper's stated next step). Usage: `repro-scale [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::scale::run(&opts);
}
