//! Regenerates the paper's fig8 data. Usage: `repro-fig8 [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::fig8::run(&opts);
}
