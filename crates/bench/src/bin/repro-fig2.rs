//! Regenerates the paper's fig2 data. Usage: `repro-fig2 [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::fig2::run(&opts);
}
