//! Regenerates the paper's backend data as a one-cell supervised
//! scenario fleet (crash-contained, PASS/FAIL classified).
//! Usage: `repro-backend [--full] [--steps N] [--backend cycle|fast]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("backend"));
}
