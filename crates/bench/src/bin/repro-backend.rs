//! Regenerates the backend-validation experiment (analytic vs
//! cycle-accurate tolerance plus the E11 trace replay). Usage:
//! `repro-backend [--steps N] [--backend cycle|fast]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::backend::run(&opts);
}
