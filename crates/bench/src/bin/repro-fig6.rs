//! Regenerates the paper's fig6 data as a one-cell supervised
//! scenario fleet (crash-contained, PASS/FAIL classified).
//! Usage: `repro-fig6 [--full] [--steps N] [--backend cycle|fast]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("fig6"));
}
