//! Regenerates the paper's fig6 data. Usage: `repro-fig6 [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::fig6::run(&opts);
}
