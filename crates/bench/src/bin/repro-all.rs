//! Regenerates every table and figure in sequence (the data recorded
//! in EXPERIMENTS.md). Usage: `repro-all [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    let t0 = std::time::Instant::now();
    spp_bench::latency::run(&opts);
    spp_bench::fig2::run(&opts);
    spp_bench::fig3::run(&opts);
    spp_bench::fig4::run(&opts);
    spp_bench::table1::run(&opts);
    spp_bench::table2::run(&opts);
    spp_bench::fig7::run(&opts);
    spp_bench::fig6::run(&opts);
    spp_bench::fig8::run(&opts);
    spp_bench::scale::run(&opts);
    spp_bench::cachestudy::run(&opts);
    spp_bench::sensitivity::run(&opts);
    spp_bench::bus::run(&opts);
    println!("\n[repro-all completed in {:.1} s of host time]", t0.elapsed().as_secs_f64());
}
