//! Regenerates every table and figure in sequence (the data recorded
//! in EXPERIMENTS.md). Each experiment runs under `catch_unwind`: a
//! panicking experiment is reported and the sweep continues, with a
//! PASS/FAIL summary at the end and a nonzero exit if anything failed.
//! Usage: `repro-all [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    let t0 = std::time::Instant::now();
    let summary = spp_bench::harness::run_all(&opts);
    print!("{}", summary.render());
    println!(
        "[repro-all completed in {:.1} s of host time]",
        t0.elapsed().as_secs_f64()
    );
    if !summary.all_passed() {
        std::process::exit(1);
    }
}
