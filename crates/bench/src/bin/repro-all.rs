//! Regenerates every table and figure in sequence (the data recorded
//! in EXPERIMENTS.md). Each experiment runs under `catch_unwind`: a
//! panicking experiment is reported and the sweep continues, with a
//! PASS/FAIL summary at the end and a nonzero exit if anything failed.
//! The summary is also written under `target/repro/` (override with
//! `SPP_REPRO_DIR`) as `summary.txt` plus a machine-readable
//! `BENCH_repro.json` with host wall-clock per experiment.
//! Usage: `repro-all [--full] [--steps N] [--backend cycle|fast]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    let t0 = std::time::Instant::now();
    let summary = spp_bench::harness::run_all(&opts);
    print!("{}", summary.render());
    let dir = std::env::var_os("SPP_REPRO_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/repro"));
    match summary.write_reports(&opts, &dir) {
        Ok(json) => println!("[reports written to {}]", json.display()),
        Err(e) => eprintln!("[could not write reports under {}: {e}]", dir.display()),
    }
    println!(
        "[repro-all completed in {:.1} s of host time]",
        t0.elapsed().as_secs_f64()
    );
    if !summary.all_passed() {
        std::process::exit(1);
    }
}
