//! Regenerates every table and figure in sequence (the data recorded
//! in EXPERIMENTS.md). Each experiment runs under `catch_unwind`: a
//! panicking experiment is reported with its error text and the sweep
//! continues, with a PASS/FAIL summary at the end and a nonzero exit
//! if anything failed. `summary.txt` and `BENCH_repro.json` (under
//! `target/repro/`, override with `SPP_REPRO_DIR`) are rewritten
//! after every experiment, so even a sweep killed hard leaves a
//! report covering every row that ran — failed rows carry their
//! panic message in an `error` field.
//! Usage: `repro-all [--full] [--steps N] [--backend cycle|fast]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    let t0 = std::time::Instant::now();
    let dir = spp_bench::repro_dir();
    let summary = spp_bench::harness::run_experiments_reporting(
        &spp_bench::harness::all_experiments(),
        &opts,
        Some(&dir),
    );
    print!("{}", summary.render());
    println!(
        "[reports written to {}]",
        dir.join("BENCH_repro.json").display()
    );
    println!(
        "[repro-all completed in {:.1} s of host time]",
        t0.elapsed().as_secs_f64()
    );
    if !summary.all_passed() {
        std::process::exit(1);
    }
}
