//! Bus-SMP saturation analysis (the paper's introductory contrast).
//! Usage: `repro-bus [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::bus::run(&opts);
}
