//! Regenerates the paper's fig4 data. Usage: `repro-fig4 [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::fig4::run(&opts);
}
