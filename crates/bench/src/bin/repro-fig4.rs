//! Regenerates the paper's fig4 data as a one-cell supervised
//! scenario fleet (crash-contained, PASS/FAIL classified).
//! Usage: `repro-fig4 [--full] [--steps N] [--backend cycle|fast]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("fig4"));
}
