//! Regenerates the paper's table2 data. Usage: `repro-table2 [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::table2::run(&opts);
}
