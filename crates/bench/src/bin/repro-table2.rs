//! Regenerates the paper's table2 data as a one-cell supervised
//! scenario fleet (crash-contained, PASS/FAIL classified).
//! Usage: `repro-table2 [--full] [--steps N] [--backend cycle|fast]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("table2"));
}
