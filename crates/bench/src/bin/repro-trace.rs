//! Observability report, run as a one-cell supervised scenario
//! fleet: traced PIC and N-body workloads with byte-identical seeded
//! event streams, counter reconciliation, and zero-cycle overhead.
//! The experiment writes `BENCH_trace.json` plus Perfetto timelines
//! (`trace_timeline.json`, loadable in ui.perfetto.dev) under
//! `target/repro/` (override with `SPP_REPRO_DIR`); a failed
//! invariant is a contained FAIL and a nonzero exit.
//! Usage: `repro-trace [--full] [--steps N]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("trace"));
}
