//! Observability report: runs small traced PIC and N-body workloads,
//! checks that the same seed produces a byte-identical event stream,
//! that trace event counts reconcile with the `MemStats` counters, and
//! that tracing never changes simulated cycles. Writes
//! `BENCH_trace.json` plus Perfetto timelines (`trace_timeline.json`,
//! loadable in ui.perfetto.dev) under `target/repro/` (override with
//! `SPP_REPRO_DIR`); exits nonzero if any invariant failed. Usage:
//! `repro-trace [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    let rep = spp_bench::trace::study(opts.steps);
    spp_bench::trace::report(&opts, &rep);
    let dir = std::env::var_os("SPP_REPRO_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/repro"));
    match spp_bench::trace::write_report(&rep, opts.steps, &dir) {
        Ok(json) => println!("[report written to {}]", json.display()),
        Err(e) => eprintln!("[could not write report under {}: {e}]", dir.display()),
    }
    if !rep.passed() {
        std::process::exit(1);
    }
}
