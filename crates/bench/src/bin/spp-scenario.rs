//! The supervised scenario fleet CLI.
//!
//! `spp-scenario validate <specs...>` parses and validates TOML
//! scenario specs; `spp-scenario run [--workers N] [--max-timeout S]
//! <specs...>` executes the matrix under the supervised fleet —
//! panicking cells are contained, hanging cells time out, golden
//! divergence becomes a structured diff — and always writes
//! `BENCH_scenarios.json` + `scenarios_summary.txt` under
//! `target/repro/` (override with `SPP_REPRO_DIR`). Exit code 0 iff
//! every cell's outcome matched its spec's declared `expect`.
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(spp_bench::scenario_cli::fleet_main(&args));
}
