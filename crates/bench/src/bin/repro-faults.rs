//! Fault-injection reproducibility report: seeded fault schedules are
//! bit-identical run to run and retry overhead scales with the fault
//! rate. Writes `BENCH_faults.json` under `target/repro/` (override
//! with `SPP_REPRO_DIR`); exits nonzero if any case was not
//! bit-identical. Usage: `repro-faults [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    let cases = spp_bench::faults::determinism_sweep(opts.steps);
    spp_bench::faults::report(&opts, &cases);
    let dir = std::env::var_os("SPP_REPRO_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/repro"));
    match spp_bench::faults::write_report(&cases, opts.steps, &dir) {
        Ok(json) => println!("[report written to {}]", json.display()),
        Err(e) => eprintln!("[could not write report under {}: {e}]", dir.display()),
    }
    if !cases.iter().all(|c| c.identical()) {
        std::process::exit(1);
    }
}
