//! Fault-injection reproducibility report, run as a one-cell
//! supervised scenario fleet: seeded fault schedules are bit-identical
//! run to run and retry overhead scales with the fault rate. The
//! experiment writes `BENCH_faults.json` under `target/repro/`
//! (override with `SPP_REPRO_DIR`); a non-reproducible case is a
//! contained FAIL and a nonzero exit.
//! Usage: `repro-faults [--full] [--steps N]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("faults"));
}
