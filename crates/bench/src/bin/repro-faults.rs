//! Fault-injection reproducibility report: seeded fault schedules are
//! bit-identical run to run and retry overhead scales with the fault
//! rate. Usage: `repro-faults [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::faults::run(&opts);
}
