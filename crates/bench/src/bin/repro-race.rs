//! Race campaign: runs all four applications under the happens-before
//! race detector (zero races required) and fuzzes the fork/join
//! replay order across seeded schedules (final state, results, and
//! memory counters must be permutation-invariant), plus the racy
//! negative-control kernel (must be flagged, must diverge, is shrunk
//! to a ≤ 2-thread minimal reproducer). Writes `BENCH_race.json` and
//! `race_repro.json` under `target/repro/` (override with
//! `SPP_REPRO_DIR`); exits nonzero if any cell failed.
//! Usage: `repro-race [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    let t0 = std::time::Instant::now();
    let campaign = spp_bench::race::campaign(&opts);
    print!(
        "{}",
        spp_bench::emit(
            "repro-race: race detection + schedule-permutation fuzzing",
            &campaign.render()
        )
    );
    let dir = spp_bench::race::repro_dir();
    match campaign.write_report(&dir) {
        Ok(json) => println!("[report written to {}]", json.display()),
        Err(e) => eprintln!("[could not write report under {}: {e}]", dir.display()),
    }
    println!(
        "[repro-race: {} apps + control, passed: {}, {:.1} s of host time]",
        campaign.apps.len(),
        campaign.passed(),
        t0.elapsed().as_secs_f64()
    );
    if !campaign.passed() {
        std::process::exit(1);
    }
}
