//! Race campaign, run as a one-cell supervised scenario fleet: all
//! four applications under the happens-before race detector (zero
//! races required) plus schedule-permutation fuzzing and the racy
//! negative control (flagged, divergent, shrunk). The experiment
//! writes `BENCH_race.json` and `race_repro.json` under
//! `target/repro/` (override with `SPP_REPRO_DIR`); a failing cell is
//! a contained FAIL and a nonzero exit.
//! Usage: `repro-race [--full] [--steps N]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("race"));
}
