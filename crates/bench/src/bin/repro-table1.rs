//! Regenerates the paper's table1 data. Usage: `repro-table1 [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::table1::run(&opts);
}
