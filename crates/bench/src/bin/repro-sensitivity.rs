//! Regenerates the paper's sensitivity data as a one-cell supervised
//! scenario fleet (crash-contained, PASS/FAIL classified).
//! Usage: `repro-sensitivity [--full] [--steps N] [--backend cycle|fast]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("sensitivity"));
}
