//! Latency-constant sensitivity analysis. Usage: `repro-sensitivity`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::sensitivity::run(&opts);
}
