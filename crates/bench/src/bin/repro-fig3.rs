//! Regenerates the paper's fig3 data. Usage: `repro-fig3 [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::fig3::run(&opts);
}
