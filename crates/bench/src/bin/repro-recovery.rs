//! Transient coherence-fault recovery campaign: sweep
//! protocol × fault kind × intensity over the PIC, N-body, and FEM
//! applications and enforce that every seeded transient is detected,
//! scrubbed, and finishes bit-identical to the fault-free run, as a
//! one-cell supervised scenario fleet (crash-contained, PASS/FAIL
//! classified). Writes `BENCH_recovery.json` under `target/repro/`.
//! Usage: `repro-recovery [--full] [--steps N]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("recovery"));
}
