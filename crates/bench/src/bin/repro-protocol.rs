//! Coherence-protocol comparison (DASH+SCI vs MESI vs Dragon) across
//! topologies up to 1024 CPUs, as a one-cell supervised scenario
//! fleet (crash-contained, PASS/FAIL classified). Writes
//! `BENCH_protocol.json` under `target/repro/`.
//! Usage: `repro-protocol [--full] [--steps N]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("protocol"));
}
