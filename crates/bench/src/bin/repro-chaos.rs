//! Degraded-mode chaos campaign, run as a one-cell supervised
//! scenario fleet: seeds × fault intensities × failure sites over the
//! PIC, N-body, and FEM applications, each cell under the coherence
//! checker and a simulated-cycle watchdog, with failing cells shrunk
//! to minimal reproducers. The experiment writes `BENCH_chaos.json`
//! under `target/repro/` (override with `SPP_REPRO_DIR`); a failing
//! cell is a contained FAIL and a nonzero exit.
//! Usage: `repro-chaos [--full] [--steps N]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("chaos"));
}
