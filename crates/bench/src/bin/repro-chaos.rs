//! Degraded-mode chaos campaign: sweeps seeds × fault intensities ×
//! failure sites over the PIC, N-body, and FEM applications, each cell
//! under the coherence checker and a simulated-cycle watchdog, and
//! shrinks any failing cell's fault-event list to a minimal
//! reproducer. Writes `BENCH_chaos.json` under `target/repro/`
//! (override with `SPP_REPRO_DIR`); exits nonzero if any cell failed.
//! Usage: `repro-chaos [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    let t0 = std::time::Instant::now();
    let campaign = spp_bench::chaos::campaign(&opts);
    print!(
        "{}",
        spp_bench::emit(
            "repro-chaos: degraded-mode chaos campaign",
            &campaign.render()
        )
    );
    let dir = std::env::var_os("SPP_REPRO_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/repro"));
    match campaign.write_report(&dir) {
        Ok(json) => println!("[report written to {}]", json.display()),
        Err(e) => eprintln!("[could not write report under {}: {e}]", dir.display()),
    }
    println!(
        "[repro-chaos: {} cells, passed: {}, {:.1} s of host time]",
        campaign.results.len(),
        campaign.passed(),
        t0.elapsed().as_secs_f64()
    );
    if !campaign.passed() {
        std::process::exit(1);
    }
}
