//! Cycle-attribution campaign, run as a one-cell supervised scenario
//! fleet: all four applications × all three coherence protocols with
//! the heatmap and race detector mounted. Checks that attributed
//! cycles partition the machine totals bit-exactly and that
//! attribution never changes the simulation, then writes the
//! integers-only `BENCH_insight.json` under `target/repro/`
//! (override with `SPP_REPRO_DIR`); a failed invariant is a
//! contained FAIL and a nonzero exit.
//! Usage: `repro-insight [--full] [--steps N]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("insight"));
}
