//! Regenerates the paper's fig7 data. Usage: `repro-fig7 [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::fig7::run(&opts);
}
