//! Regenerates the paper's latency data. Usage: `repro-latency [--full] [--steps N]`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::latency::run(&opts);
}
