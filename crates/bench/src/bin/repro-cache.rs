//! Regenerates the paper's cache data as a one-cell supervised
//! scenario fleet (crash-contained, PASS/FAIL classified).
//! Usage: `repro-cache [--full] [--steps N] [--backend cycle|fast]`.
fn main() {
    std::process::exit(spp_bench::scenario_cli::run_single("cache"));
}
