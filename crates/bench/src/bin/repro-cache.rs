//! Cache-geometry study (§7 future work). Usage: `repro-cache`.
fn main() {
    let opts = spp_bench::Opts::from_args();
    spp_bench::cachestudy::run(&opts);
}
