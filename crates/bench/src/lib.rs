//! # spp-bench — the experiment harness
//!
//! One module per paper artifact; each has a `run(&Opts) -> String`
//! that regenerates the table/figure data (printing a side-by-side
//! "paper" column where the paper gives numbers) and returns the
//! formatted text. The `repro-*` binaries are thin wrappers;
//! `repro-all` chains everything and is what EXPERIMENTS.md records.

#![warn(missing_docs)]

pub mod backend;
pub mod bus;
pub mod cachestudy;
pub mod chaos;
pub mod faults;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod harness;
pub mod insight;
pub mod latency;
pub mod protocol;
pub mod race;
pub mod recovery;
pub mod scale;
pub mod scenario_cli;
pub mod sensitivity;
pub mod table1;
pub mod table2;
pub mod trace;

/// Schema version stamped into every `BENCH_*.json` this crate emits
/// (`repro`, `faults`, `chaos`, `trace`, `race`); bump on breaking
/// layout changes so downstream tooling can dispatch.
pub const BENCH_SCHEMA_VERSION: i64 = 1;

/// The report directory every experiment writes its `BENCH_*.json`
/// under: `target/repro`, overridable with `SPP_REPRO_DIR`.
pub fn repro_dir() -> std::path::PathBuf {
    std::env::var_os("SPP_REPRO_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/repro"))
}

/// Which memory-port backend prices the backend-sensitive sweeps
/// (see [`backend`]). The figure/table experiments always use the
/// cycle-accurate machine: the paper anchors are properties of the
/// cycle model, not of any analytic approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The cycle-accurate [`spp_core::Machine`] (default).
    Cycle,
    /// The analytic [`spp_core::FastPort`] hit/miss model; the
    /// backend experiment asserts its counts stay within the
    /// documented tolerance of the cycle-accurate run.
    Fast,
}

impl Backend {
    /// The command-line spelling.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Cycle => "cycle",
            Backend::Fast => "fast",
        }
    }
}

/// Harness options shared by all experiments.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Run paper-size workloads even where they are expensive
    /// (notably the 2M-particle N-body). Off by default; the default
    /// harness substitutes documented scaled sizes.
    pub full: bool,
    /// Measured steps per application configuration (after one
    /// untimed warm-up step).
    pub steps: usize,
    /// Memory-port backend for the backend-sensitive sweeps.
    pub backend: Backend,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            full: false,
            steps: 2,
            backend: Backend::Cycle,
        }
    }
}

impl Opts {
    /// The usage text every `repro-*` binary prints on a bad command
    /// line.
    pub fn usage() -> &'static str {
        "usage: repro-* [--full] [--steps N] [--backend cycle|fast]\n\
         \x20 --full         run paper-size workloads (expensive)\n\
         \x20 --steps N      measured steps per configuration (positive integer)\n\
         \x20 --backend B    port backend for backend-sensitive sweeps:\n\
         \x20                cycle (cycle-accurate, default) or fast (analytic\n\
         \x20                hit/miss model, validated against cycle)"
    }

    /// Parse `--full` and `--steps N` from an argument list.
    pub fn try_parse(mut args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut o = Opts::default();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => o.full = true,
                "--steps" => {
                    let v = args
                        .next()
                        .ok_or_else(|| "--steps needs a value".to_string())?;
                    o.steps = v
                        .parse()
                        .map_err(|_| format!("--steps needs a positive integer, got {v:?}"))?;
                    if o.steps == 0 {
                        return Err("--steps must be at least 1".to_string());
                    }
                }
                "--backend" => {
                    let v = args
                        .next()
                        .ok_or_else(|| "--backend needs a value".to_string())?;
                    o.backend = match v.as_str() {
                        "cycle" => Backend::Cycle,
                        "fast" => Backend::Fast,
                        other => {
                            return Err(format!("--backend must be cycle or fast, got {other:?}"))
                        }
                    };
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        Ok(o)
    }

    /// Parse the process arguments; on a bad command line print the
    /// error plus [`Opts::usage`] and exit with status 2.
    pub fn from_args() -> Self {
        Self::try_parse(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e}\n{}", Self::usage());
            std::process::exit(2);
        })
    }
}

/// Minimal fixed-width table formatter (plain text, pasteable into
/// markdown as a code block).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut w = vec![0usize; ncol];
        for c in 0..ncol {
            w[c] = self.headers[c].len();
            for r in &self.rows {
                w[c] = w[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], w: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:>width$}  ", cell, width = w[c]));
            }
            out.push('\n');
        };
        line(&self.headers, &w, &mut out);
        out.push_str(&format!(
            "{}\n",
            "-".repeat(w.iter().sum::<usize>() + 2 * ncol)
        ));
        for r in &self.rows {
            line(r, &w, &mut out);
        }
        out
    }
}

/// Format a float to a compact fixed string.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Print a section header and its content (used by every repro
/// binary).
pub fn emit(title: &str, body: &str) -> String {
    let bar = "=".repeat(title.len());
    let text = format!("\n{title}\n{bar}\n{body}");
    println!("{text}");
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "longer"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("longer"));
        assert!(lines[2].ends_with("2  "));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(10.0, 1), "10.0");
    }

    #[test]
    fn default_opts() {
        let o = Opts::default();
        assert!(!o.full);
        assert_eq!(o.steps, 2);
        assert_eq!(o.backend, Backend::Cycle);
    }

    fn parse(args: &[&str]) -> Result<Opts, String> {
        Opts::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn try_parse_accepts_supported_flags() {
        let o = parse(&["--full", "--steps", "5"]).unwrap();
        assert!(o.full);
        assert_eq!(o.steps, 5);
        assert!(!parse(&[]).unwrap().full);
        assert_eq!(
            parse(&["--backend", "fast"]).unwrap().backend,
            Backend::Fast
        );
        assert_eq!(
            parse(&["--backend", "cycle"]).unwrap().backend,
            Backend::Cycle
        );
    }

    #[test]
    fn try_parse_rejects_bad_command_lines() {
        assert!(parse(&["--bogus"])
            .unwrap_err()
            .contains("unknown argument"));
        assert!(parse(&["--steps"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--steps", "x"])
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&["--steps", "0"]).unwrap_err().contains("at least 1"));
        assert!(parse(&["--backend"]).unwrap_err().contains("needs a value"));
        assert!(parse(&["--backend", "slow"])
            .unwrap_err()
            .contains("cycle or fast"));
    }
}
