//! Trace/observability study (`repro-trace`): small PIC and N-body
//! runs with the event tracer mounted, demonstrating
//!
//! * **determinism** — the same workload traced twice produces a
//!   byte-identical Perfetto timeline and metrics document;
//! * **reconciliation** — trace event counts agree exactly with the
//!   hardware-style [`spp_core::MemStats`] counters, per-CPU stats sum
//!   to the global counters, and the miss kinds partition the misses;
//! * **span nesting** — the hierarchical profile is balanced (every
//!   `enter` matched by an `exit`);
//! * **overhead** — simulated cycles are bit-identical with tracing on
//!   or off, and the host-time cost of the disabled path on the
//!   batched run fast path is measured (a single branch per coherence
//!   event; see DESIGN.md §4e).

use crate::{emit, f, Opts, Table};
use nbody::{NbodyProblem, SharedNbody};
use pic::{PicProblem, SharedPic};
use spp_core::trace::{metrics_json, perfetto_json, spp_top, N_EVENT_KINDS};
use spp_core::{Machine, MemClass, SimArray, TraceEvent};
use spp_runtime::{Placement, Profile, Runtime, Team};

/// Everything observed from one traced workload run.
pub struct TraceOutcome {
    /// Workload label.
    pub workload: &'static str,
    /// Elapsed simulated cycles.
    pub elapsed: u64,
    /// Events captured in the ring.
    pub events: usize,
    /// Events dropped past the ring capacity (must be 0 at this size).
    pub dropped: u64,
    /// Exact per-kind event counts (survive ring drops).
    pub counts: [u64; N_EVENT_KINDS],
    /// Perfetto/Chrome `trace_event` JSON timeline.
    pub perfetto: String,
    /// Flat metrics JSON (global + per-node + per-CPU + events).
    pub metrics: String,
    /// Human `spp-top` summary.
    pub top: String,
    /// CXpa-style hierarchical profile report.
    pub profile: String,
    /// Span-nesting invariant: every `enter` had its `exit`.
    pub balanced: bool,
    /// Event counts reconcile with the MemStats counters.
    pub reconciled: bool,
}

/// Check every counter-level invariant the tracer promises: miss-kind
/// event counts equal the stats counters, upgrade/rollout events
/// match, per-CPU stats sum to the global counters, and the miss
/// kinds partition the misses globally and per hypernode.
pub fn reconciles(m: &Machine) -> bool {
    let t = m.tracer().expect("tracer mounted");
    let c = t.counts();
    let s = &m.stats;
    let events_match = c[0] == s.local_misses
        && c[1] == s.gcb_hits
        && c[2] == s.sci_fetches
        && c[3] == s.c2c_transfers
        && c[4] == s.upgrades
        && c[6] == s.gcb_rollouts;
    let mut summed = spp_core::MemStats::default();
    for per in m.per_cpu_stats() {
        summed.merge(per);
    }
    let nodes = m.config().hypernodes;
    let nodes_partition = (0..nodes).all(|n| {
        m.node_stats(spp_core::NodeId(n as u8))
            .miss_partition_check()
    });
    events_match && summed == *s && s.miss_partition_check() && nodes_partition
}

/// Traced shared-memory PIC (16x16x16 mesh, 8 CPUs across two
/// hypernodes) with a hierarchical profile over its phase loop.
pub fn pic_traced(steps: usize) -> TraceOutcome {
    let mut rt = Runtime::new(Machine::spp1000(2).with_tracing());
    let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
    let mut sim = SharedPic::new(&mut rt, PicProblem::with_mesh(16, 16, 16), &team);
    let mut prof = Profile::new();
    let mut elapsed = 0u64;
    prof.enter("pic");
    for _ in 0..steps {
        prof.enter("step");
        let rep = sim.step_profiled(&mut rt, &team, Some(&mut prof));
        prof.exit();
        elapsed += rep.elapsed;
    }
    prof.exit();
    outcome("PIC shared", elapsed, &rt.machine, &prof)
}

/// Traced shared-memory N-body (2048 bodies, 8 CPUs across two
/// hypernodes) with a hierarchical profile over its phase loop.
pub fn nbody_traced(steps: usize) -> TraceOutcome {
    let mut rt = Runtime::new(Machine::spp1000(2).with_tracing());
    let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
    let mut sim = SharedNbody::new(&mut rt, NbodyProblem::with_n(2048), &team);
    let mut prof = Profile::new();
    let mut elapsed = 0u64;
    prof.enter("nbody");
    for _ in 0..steps {
        prof.enter("step");
        let (c, _, _) = sim.step_profiled(&mut rt, &team, Some(&mut prof));
        prof.exit();
        elapsed += c;
    }
    prof.exit();
    outcome("N-body shared", elapsed, &rt.machine, &prof)
}

fn outcome(workload: &'static str, elapsed: u64, m: &Machine, prof: &Profile) -> TraceOutcome {
    let events = m.trace_events();
    let t = m.tracer().expect("tracer mounted");
    TraceOutcome {
        workload,
        elapsed,
        events: events.len(),
        dropped: t.dropped(),
        counts: t.counts(),
        perfetto: perfetto_json(&events),
        metrics: metrics_json(m),
        top: spp_top(m),
        profile: prof.report(),
        balanced: prof.balanced(),
        reconciled: reconciles(m),
    }
}

/// Host-time overhead of the tracing seam on the batched run fast
/// path, measured by running the same strided sweep with the tracer
/// absent and mounted.
pub struct OverheadStudy {
    /// Simulated cycles with the tracer absent.
    pub cycles_off: u64,
    /// Simulated cycles with the tracer mounted (must match exactly).
    pub cycles_on: u64,
    /// Host nanoseconds, tracer absent (best of the repetitions).
    pub ns_off: u64,
    /// Host nanoseconds, tracer mounted (best of the repetitions).
    pub ns_on: u64,
    /// Stats equality across the two runs.
    pub stats_identical: bool,
}

impl OverheadStudy {
    /// Host overhead of mounting the tracer, as a fraction of the
    /// untraced run (negative values are measurement noise).
    pub fn overhead(&self) -> f64 {
        self.ns_on as f64 / self.ns_off.max(1) as f64 - 1.0
    }
}

/// Sweep a far-shared array with `read_run`/`fill_run` (the batched
/// fast path) over 16 CPUs; time the best of `reps` passes.
pub fn overhead_study(reps: usize) -> OverheadStudy {
    fn sweep(traced: bool, reps: usize) -> (u64, u64, spp_core::MemStats) {
        let m = Machine::spp1000(2);
        let m = if traced { m.with_tracing() } else { m };
        let mut rt = Runtime::new(m);
        let team = Team::place(rt.machine.config(), 16, &Placement::Uniform);
        let n = 1usize << 16;
        let mut a = SimArray::<f64>::from_elem(&mut rt.machine, MemClass::FarShared, n, 0.0);
        let mut cycles = 0u64;
        let mut best = u64::MAX;
        for _ in 0..reps.max(1) {
            let arr = &mut a;
            let t0 = std::time::Instant::now();
            let rep = rt.team_fork_join(&team, |ctx| {
                let r = ctx.chunk(n);
                let mut buf: Vec<f64> = Vec::with_capacity(r.len());
                ctx.read_run(arr, r.clone(), &mut buf);
                ctx.fill_run(arr, r, 1.0);
            });
            best = best.min(t0.elapsed().as_nanos() as u64);
            cycles += rep.elapsed;
        }
        (cycles, best, rt.machine.stats)
    }
    let (cycles_off, ns_off, stats_off) = sweep(false, reps);
    let (cycles_on, ns_on, stats_on) = sweep(true, reps);
    OverheadStudy {
        cycles_off,
        cycles_on,
        ns_off,
        ns_on,
        stats_identical: stats_off == stats_on,
    }
}

/// The full study one `repro-trace` invocation performs: both
/// workloads traced twice (for the determinism check) plus the
/// overhead sweep.
pub struct TraceReport {
    /// First run of each workload.
    pub runs: Vec<TraceOutcome>,
    /// Byte-identity of timeline + metrics across the repeated runs.
    pub deterministic: bool,
    /// The batched-path overhead measurement.
    pub overhead: OverheadStudy,
}

impl TraceReport {
    /// Overall verdict (what the `"passed"` JSON field reports).
    pub fn passed(&self) -> bool {
        self.deterministic
            && self.overhead.cycles_off == self.overhead.cycles_on
            && self.overhead.stats_identical
            && self
                .runs
                .iter()
                .all(|r| r.balanced && r.reconciled && r.dropped == 0 && r.events > 0)
    }
}

/// Run the whole study.
pub fn study(steps: usize) -> TraceReport {
    let runners: [fn(usize) -> TraceOutcome; 2] = [pic_traced, nbody_traced];
    let mut runs = Vec::new();
    let mut deterministic = true;
    for r in runners {
        let first = r(steps);
        let second = r(steps);
        deterministic &= first.perfetto == second.perfetto && first.metrics == second.metrics;
        runs.push(first);
    }
    TraceReport {
        runs,
        deterministic,
        overhead: overhead_study(3),
    }
}

/// Machine-readable form (the `BENCH_trace.json` the `repro-trace`
/// binary writes under `target/repro`).
pub fn to_json(rep: &TraceReport, steps: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {},\n  \"experiment\": \"trace\",\n",
        crate::BENCH_SCHEMA_VERSION
    ));
    out.push_str(&format!(
        "  \"steps\": {},\n  \"passed\": {},\n  \"deterministic\": {},\n",
        steps,
        rep.passed(),
        rep.deterministic
    ));
    out.push_str(&format!(
        "  \"overhead\": {{\"cycles_identical\": {}, \"stats_identical\": {}, \
         \"ns_off\": {}, \"ns_on\": {}, \"overhead_pct\": {:.2}}},\n",
        rep.overhead.cycles_off == rep.overhead.cycles_on,
        rep.overhead.stats_identical,
        rep.overhead.ns_off,
        rep.overhead.ns_on,
        rep.overhead.overhead() * 100.0
    ));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rep.runs.iter().enumerate() {
        let comma = if i + 1 < rep.runs.len() { "," } else { "" };
        let counts: Vec<String> = r
            .counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(k, c)| format!("\"{}\": {c}", TraceEvent::kind_label(k)))
            .collect();
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"elapsed\": {}, \"events\": {}, \
             \"dropped\": {}, \"balanced\": {}, \"reconciled\": {}, \
             \"counts\": {{{}}}}}{comma}\n",
            r.workload,
            r.elapsed,
            r.events,
            r.dropped,
            r.balanced,
            r.reconciled,
            counts.join(", ")
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `BENCH_trace.json` plus the Perfetto timelines under `dir`
/// (created if needed). Returns the JSON path.
pub fn write_report(
    rep: &TraceReport,
    steps: usize,
    dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let json = dir.join("BENCH_trace.json");
    std::fs::write(&json, to_json(rep, steps))?;
    for r in &rep.runs {
        let slug: String = r
            .workload
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        std::fs::write(dir.join(format!("trace_{slug}.json")), &r.perfetto)?;
    }
    // The canonical timeline artifact (load in ui.perfetto.dev).
    std::fs::write(dir.join("trace_timeline.json"), &rep.runs[0].perfetto)?;
    Ok(json)
}

/// Regenerate the observability report. Writes `BENCH_trace.json`
/// plus the Perfetto timelines so a `repro-all` or scenario-engine
/// sweep leaves the same artifacts as the standalone binary, then
/// panics if any invariant failed so the harness records a FAIL.
pub fn run(o: &Opts) -> String {
    let rep = study(o.steps);
    let mut text = report(o, &rep);
    match write_report(&rep, o.steps, &crate::repro_dir()) {
        Ok(json) => text.push_str(&format!("[report written to {}]\n", json.display())),
        Err(e) => text.push_str(&format!("[could not write report: {e}]\n")),
    }
    assert!(rep.passed(), "trace observability invariants failed");
    text
}

/// Render the report from an already-computed study (lets the
/// `repro-trace` binary print and write from one study).
pub fn report(_o: &Opts, rep: &TraceReport) -> String {
    let mut out = String::new();

    let mut t = Table::new(&[
        "workload",
        "sim cycles",
        "events",
        "dropped",
        "balanced",
        "reconciled",
    ]);
    for r in &rep.runs {
        t.row(vec![
            r.workload.to_string(),
            r.elapsed.to_string(),
            r.events.to_string(),
            r.dropped.to_string(),
            if r.balanced { "yes" } else { "NO" }.to_string(),
            if r.reconciled { "yes" } else { "NO" }.to_string(),
        ]);
    }
    out.push_str(&emit(
        "repro-trace: traced workloads",
        &format!(
            "{}\nDeterminism (same seed => byte-identical timeline + metrics): {}\n\
             Event counts reconcile with the MemStats counters; per-CPU stats\n\
             sum to the global counters; miss kinds partition the misses.",
            t.render(),
            if rep.deterministic { "yes" } else { "NO" }
        ),
    ));

    let o = &rep.overhead;
    let mut t = Table::new(&["tracer", "sim cycles", "host ns (best)"]);
    t.row(vec![
        "absent".into(),
        o.cycles_off.to_string(),
        o.ns_off.to_string(),
    ]);
    t.row(vec![
        "mounted".into(),
        o.cycles_on.to_string(),
        o.ns_on.to_string(),
    ]);
    out.push_str(&emit(
        "repro-trace: batched-path overhead",
        &format!(
            "{}\nSimulated cycles are bit-identical with tracing on or off\n\
             (identical: {}); mounting the tracer cost {}% host time on this\n\
             batched sweep. With the tracer absent the seam is one branch per\n\
             coherence event.",
            t.render(),
            o.cycles_off == o.cycles_on && o.stats_identical,
            f(o.overhead() * 100.0, 1)
        ),
    ));

    let first = &rep.runs[0];
    out.push_str(&emit(
        "repro-trace: spp-top (PIC shared)",
        first.top.trim_end(),
    ));
    out.push_str(&emit(
        "repro-trace: CXpa-style profile (PIC shared)",
        first.profile.trim_end(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_pic_reconciles_and_balances() {
        let r = pic_traced(1);
        assert!(r.events > 0);
        assert_eq!(r.dropped, 0);
        assert!(r.balanced);
        assert!(r.reconciled);
        assert!(r.perfetto.contains("traceEvents"));
        assert!(r.profile.contains("pic/step/deposit"), "{}", r.profile);
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let a = pic_traced(1);
        let b = pic_traced(1);
        assert_eq!(a.perfetto, b.perfetto);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn tracing_never_changes_simulated_cycles() {
        let o = overhead_study(1);
        assert_eq!(o.cycles_off, o.cycles_on);
        assert!(o.stats_identical);
    }

    #[test]
    fn json_report_is_well_formed_and_lands_on_disk() {
        let rep = TraceReport {
            runs: vec![nbody_traced(1)],
            deterministic: true,
            overhead: overhead_study(1),
        };
        let j = to_json(&rep, 1);
        assert!(j.contains("\"passed\": true"), "{j}");
        assert!(j.contains("\"miss-sci\""), "{j}");
        let dir = std::env::temp_dir().join("spp-trace-report-test");
        let json = write_report(&rep, 1, &dir).unwrap();
        assert!(json.ends_with("BENCH_trace.json"));
        assert!(dir.join("trace_timeline.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
