//! Figure 2 — cost of fork-join vs. number of threads, for high
//! locality and uniform distribution across two hypernodes.

use crate::{emit, f, Opts, Table};
use spp_runtime::{Placement, Runtime};

/// Measured fork-join times, microseconds, indexed by thread count.
pub struct Fig2 {
    /// (threads, high-locality µs, uniform µs) triples.
    pub points: Vec<(usize, f64, f64)>,
}

/// Regenerate Figure 2.
pub fn run(_o: &Opts) -> String {
    let data = collect();
    let mut t = Table::new(&["threads", "high locality (us)", "uniform (us)"]);
    for (n, hl, un) in &data.points {
        t.row(vec![n.to_string(), f(*hl, 1), f(*un, 1)]);
    }
    // Missing thread counts render as "n/a" instead of panicking
    // (collect always covers 1..=16, but a trimmed Fig2 from an
    // ablation must not take the report down).
    let stat = |v: Option<f64>| v.map_or_else(|| "n/a".to_string(), |x| format!("{x:.1} us"));
    let body = format!(
        "{}\npaper anchors: ~10 us per extra local pair, ~20 us per uniform pair,\n\
         ~50 us one-time penalty when a second hypernode joins.\n\
         measured local pair slope (2->8): {}; uniform pair slope (2->16): {};\n\
         cross-node jump (8->10, high locality): {}",
        t.render(),
        stat(pair_slope(&data, 2, 8, true)),
        stat(pair_slope(&data, 2, 16, false)),
        stat(jump(&data))
    );
    emit("Figure 2: fork-join cost", &body)
}

/// Raw data (used by tests and the ablation harness).
pub fn collect() -> Fig2 {
    let mut points = Vec::new();
    for n in 1..=16usize {
        let hl = measure(n, &Placement::HighLocality);
        let un = measure(n, &Placement::Uniform);
        points.push((n, hl, un));
    }
    Fig2 { points }
}

fn measure(n: usize, placement: &Placement) -> f64 {
    let mut rt = Runtime::spp1000(2);
    // Warm the barrier/coherence state once, then take the steady
    // measurement (the paper used minima over many runs).
    rt.fork_join(n, placement, |_| {});
    rt.fork_join(n, placement, |_| {}).elapsed_us()
}

/// Per-pair cost slope between two thread counts, or `None` if either
/// count is absent from the data.
pub fn pair_slope(d: &Fig2, from: usize, to: usize, high_locality: bool) -> Option<f64> {
    let get = |n: usize| {
        d.points
            .iter()
            .find(|p| p.0 == n)
            .map(|p| if high_locality { p.1 } else { p.2 })
    };
    Some((get(to)? - get(from)?) / ((to - from) as f64 / 2.0))
}

/// The 8→10 thread cross-hypernode activation jump (high locality), or
/// `None` if either count is absent.
pub fn jump(d: &Fig2) -> Option<f64> {
    let get = |n: usize| d.points.iter().find(|p| p.0 == n).map(|p| p.1);
    Some(get(10)? - get(8)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape_matches_paper() {
        let d = collect();
        // ~10 us per local pair.
        let local = pair_slope(&d, 2, 8, true).expect("counts 2 and 8 measured");
        assert!((7.0..=15.0).contains(&local), "local slope {local}");
        // ~20 us per uniform pair.
        let uniform = pair_slope(&d, 2, 16, false).expect("counts 2 and 16 measured");
        assert!((14.0..=28.0).contains(&uniform), "uniform slope {uniform}");
        // ~50 us activation when crossing hypernodes.
        let j = jump(&d).expect("counts 8 and 10 measured");
        assert!((40.0..=80.0).contains(&j), "cross-node jump {j}");
        // Monotone in thread count for each placement.
        for w in d.points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1.0);
        }
    }

    #[test]
    fn missing_thread_counts_yield_none_not_a_panic() {
        let d = Fig2 {
            points: vec![(2, 10.0, 20.0), (8, 40.0, 80.0)],
        };
        assert_eq!(pair_slope(&d, 2, 8, true), Some(10.0));
        assert_eq!(pair_slope(&d, 2, 16, false), None);
        assert_eq!(jump(&d), None, "count 10 is absent");
    }
}
