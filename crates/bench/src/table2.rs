//! Table 2 — PPM (PROMETHEUS analog) Mflop/s on the paper's grid and
//! tile configurations.

use crate::{emit, f, Opts, Table};
use ppm::{PpmProblem, SharedPpm};
use spp_runtime::{Placement, Runtime, Team};

/// One Table 2 row: (grid, tiles, procs, paper Mflop/s).
pub type Row = ((usize, usize), (usize, usize), usize, f64);

/// Rows of Table 2: (grid, tiles, procs, paper Mflop/s).
pub const ROWS: [Row; 10] = [
    ((120, 480), (4, 16), 1, 29.9),
    ((120, 480), (4, 16), 2, 58.2),
    ((120, 480), (4, 16), 4, 118.8),
    ((120, 480), (4, 16), 8, 228.5),
    ((120, 480), (12, 48), 1, 23.8),
    ((120, 480), (12, 48), 2, 47.8),
    ((120, 480), (12, 48), 4, 95.9),
    ((120, 480), (12, 48), 8, 186.2),
    ((120, 480), (4, 16), 1, 29.9),
    ((240, 960), (4, 16), 4, 118.5),
];

/// Measure one Table 2 row.
pub fn measure(grid: (usize, usize), tiles: (usize, usize), procs: usize, steps: usize) -> f64 {
    let p = PpmProblem::table2(grid.0, grid.1, tiles.0, tiles.1);
    let mut rt = Runtime::spp1000(2);
    let team = Team::place(rt.machine.config(), procs, &Placement::HighLocality);
    let mut sim = SharedPpm::new(&mut rt, p, &team);
    sim.step(&mut rt, &team); // warm-up
    sim.run(&mut rt, &team, steps).mflops()
}

/// Regenerate Table 2.
pub fn run(o: &Opts) -> String {
    let mut t = Table::new(&["Grid", "Tiles", "Procs", "Mflop/s", "paper"]);
    for ((gx, gy), (tx, ty), procs, paper) in ROWS {
        let mf = measure((gx, gy), (tx, ty), procs, o.steps);
        t.row(vec![
            format!("{gx}x{gy}"),
            format!("{tx}x{ty}"),
            procs.to_string(),
            f(mf, 1),
            f(paper, 1),
        ]);
    }
    emit("Table 2: PPM performance", &t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_key_rows_in_band() {
        // 4x16 tiling, 4 procs: paper 118.8.
        let mf = measure((120, 480), (4, 16), 4, 1);
        assert!((95.0..=145.0).contains(&mf), "4-proc = {mf}");
        // Finer tiles cost throughput (paper: 95.9 at 4 procs).
        let fine = measure((120, 480), (12, 48), 4, 1);
        assert!(fine < mf, "fine {fine} vs coarse {mf}");
    }
}
