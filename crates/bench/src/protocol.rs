//! Coherence-protocol comparison — the counterfactual the paper could
//! not run. The SPP-1000 shipped DASH-style intra-hypernode
//! directories bridged by SCI distributed lists (§2); this experiment
//! replays the paper's four shared-memory applications under that
//! protocol *and* under two classic alternatives priced through the
//! same latency model:
//!
//! * `mesi` — invalidation-based snooping with an Exclusive state
//!   (silent E→M upgrades, cache-to-cache supplies);
//! * `dragon` — update-based snooping (shared writes broadcast the
//!   new value instead of invalidating, via an owned-shared state).
//!
//! The sweep crosses protocol × topology × application, climbing past
//! the paper's 2-hypernode testbed to 32 hypernodes (256 CPUs) and —
//! under `--full` — the 128-hypernode, 1024-CPU architectural limit.
//! That scale is only affordable because every line-tracking
//! structure is sparse: the report records each cell's live
//! coherence-entry and cached-line counts, which stay proportional to
//! the lines the application touched rather than to the address space
//! or CPU count.
//!
//! The machine-readable summary is `BENCH_protocol.json` under
//! `target/repro/` (override with `SPP_REPRO_DIR`), following the
//! `BENCH_repro.json` convention. Every recorded quantity is an
//! integer produced by the deterministic simulator, so back-to-back
//! runs are byte-identical — ci.sh double-runs the quick sweep and
//! `cmp`s the JSON.

use crate::{emit, Opts, Table};
use fem::{Coding, SharedFem};
use nbody::{NbodyProblem, SharedNbody};
use pic::{PicProblem, SharedPic};
use ppm::{PpmProblem, SharedPpm};
use spp_core::{Machine, MemStats, ProtocolKind};
use spp_runtime::{Placement, Runtime, Team};

/// Hypernode counts swept by default: the paper's testbed and the
/// 256-CPU point.
pub const NODES_QUICK: [usize; 2] = [2, 32];

/// `--full` adds the architectural limit (1024 CPUs).
pub const NODES_FULL: [usize; 3] = [2, 32, 128];

/// The four applications the sweep replays.
pub const APPS: [&str; 4] = ["pic", "nbody", "fem", "ppm"];

/// One (protocol, topology, application) cell of the sweep.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Protocol label (`dash-sci`, `mesi`, `dragon`).
    pub protocol: &'static str,
    /// Hypernodes simulated.
    pub hypernodes: usize,
    /// CPUs simulated (8 per hypernode).
    pub cpus: usize,
    /// Application label.
    pub app: &'static str,
    /// Elapsed simulated cycles over the measured steps.
    pub cycles: u64,
    /// Final memory-system counters.
    pub stats: MemStats,
    /// Live coherence-tracking entries (directories + SCI + snoop
    /// filter) at the end of the run — the sparse-memory proxy.
    pub footprint: usize,
    /// Valid lines across all per-CPU caches at the end of the run.
    pub cached: usize,
}

/// Run one application for `steps` measured steps (after one untimed
/// warm-up step) on a machine of `hypernodes` nodes under `kind`,
/// using every CPU.
pub fn run_cell(kind: ProtocolKind, hypernodes: usize, app: &'static str, steps: usize) -> Cell {
    let machine = Machine::spp1000(hypernodes).with_protocol(kind);
    let mut rt = Runtime::new(machine);
    let team = Team::place(rt.machine.config(), 8 * hypernodes, &Placement::Uniform);
    let mut cycles = 0u64;
    match app {
        "pic" => {
            let mut sim = SharedPic::new(&mut rt, PicProblem::with_mesh(8, 8, 8), &team);
            sim.step(&mut rt, &team); // warm-up
            for _ in 0..steps {
                cycles += sim.step(&mut rt, &team).elapsed;
            }
        }
        "nbody" => {
            let mut sim = SharedNbody::new(&mut rt, NbodyProblem::with_n(4096), &team);
            sim.step(&mut rt, &team);
            for _ in 0..steps {
                cycles += sim.step(&mut rt, &team).0;
            }
        }
        "fem" => {
            let mut sim =
                SharedFem::new(&mut rt, fem::structured(32, 32), Coding::ScatterAdd, &team);
            sim.step(&mut rt, &team, 0.2);
            for _ in 0..steps {
                cycles += sim.step(&mut rt, &team, 0.2).0;
            }
        }
        "ppm" => {
            let mut sim = SharedPpm::new(&mut rt, PpmProblem::tiny(), &team);
            sim.step(&mut rt, &team);
            for _ in 0..steps {
                cycles += sim.step(&mut rt, &team).0;
            }
        }
        other => panic!("unknown app {other:?}"),
    }
    Cell {
        protocol: kind.label(),
        hypernodes,
        cpus: 8 * hypernodes,
        app,
        cycles,
        stats: rt.machine.stats,
        footprint: rt.machine.coherence_footprint(),
        cached: rt.machine.cached_lines(),
    }
}

/// The full sweep: protocol × topology × application.
pub fn sweep(o: &Opts) -> Vec<Cell> {
    let nodes: &[usize] = if o.full { &NODES_FULL } else { &NODES_QUICK };
    let mut cells = Vec::new();
    for kind in ProtocolKind::ALL {
        for &h in nodes {
            for app in APPS {
                cells.push(run_cell(kind, h, app, o.steps));
            }
        }
    }
    cells
}

/// Machine-readable form (the `BENCH_protocol.json` ci.sh
/// byte-compares across a double run). Integers only — no floats, no
/// timestamps — so identical inputs serialize identically.
pub fn to_json(cells: &[Cell], steps: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {},\n  \"experiment\": \"protocol\",\n",
        crate::BENCH_SCHEMA_VERSION
    ));
    out.push_str(&format!("  \"steps\": {steps},\n  \"cells\": [\n"));
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"protocol\": \"{}\", \"hypernodes\": {}, \"cpus\": {}, \
             \"app\": \"{}\", \"cycles\": {}, \"hits\": {}, \"local_misses\": {}, \
             \"sci_fetches\": {}, \"invalidations\": {}, \"c2c_transfers\": {}, \
             \"snoops\": {}, \"updates\": {}, \"footprint_lines\": {}, \
             \"cached_lines\": {}}}{comma}\n",
            c.protocol,
            c.hypernodes,
            c.cpus,
            c.app,
            c.cycles,
            c.stats.hits,
            c.stats.local_misses,
            c.stats.sci_fetches,
            c.stats.invalidations,
            c.stats.c2c_transfers,
            c.stats.snoops,
            c.stats.updates,
            c.footprint,
            c.cached,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `BENCH_protocol.json` under `dir` (created if needed).
/// Returns the JSON path.
pub fn write_report(
    cells: &[Cell],
    steps: usize,
    dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let json = dir.join("BENCH_protocol.json");
    std::fs::write(&json, to_json(cells, steps))?;
    Ok(json)
}

/// Run the protocol comparison. Writes `BENCH_protocol.json`, then
/// asserts the structural properties the sweep exists to demonstrate:
/// protocol-foreign counters stay zero, and the line-tracking
/// footprint stays proportional to touched lines at every topology.
pub fn run(o: &Opts) -> String {
    let cells = sweep(o);
    let mut t = Table::new(&[
        "protocol",
        "nodes",
        "cpus",
        "app",
        "cycles",
        "hits",
        "inval",
        "snoops",
        "updates",
        "footprint",
    ]);
    for c in &cells {
        t.row(vec![
            c.protocol.to_string(),
            c.hypernodes.to_string(),
            c.cpus.to_string(),
            c.app.to_string(),
            c.cycles.to_string(),
            c.stats.hits.to_string(),
            c.stats.invalidations.to_string(),
            c.stats.snoops.to_string(),
            c.stats.updates.to_string(),
            c.footprint.to_string(),
        ]);
    }
    let mut text = emit(
        "Coherence protocols: DASH+SCI vs snooping MESI vs Dragon",
        &format!(
            "{}\nSame applications, same latency model, three coherence designs.\n\
             Dragon trades MESI's invalidation misses for update traffic; the\n\
             directory protocol localizes coherence inside a hypernode. The\n\
             footprint column counts live line-tracking entries — sparse, so it\n\
             follows the working set, not the 1024-CPU address space.",
            t.render()
        ),
    );
    match write_report(&cells, o.steps, &crate::repro_dir()) {
        Ok(json) => text.push_str(&format!("[report written to {}]\n", json.display())),
        Err(e) => text.push_str(&format!("[could not write report: {e}]\n")),
    }
    for c in &cells {
        match c.protocol {
            "dash-sci" => assert_eq!(
                (c.stats.snoops, c.stats.updates),
                (0, 0),
                "snoop counters leaked into DASH+SCI ({} at {} nodes)",
                c.app,
                c.hypernodes
            ),
            "mesi" => assert_eq!(
                c.stats.updates, 0,
                "update counter leaked into MESI ({} at {} nodes)",
                c.app, c.hypernodes
            ),
            _ => {}
        }
        // Sparse line tracking: the footprint is bounded by lines
        // touched (≤ one entry per structure per distinct line, and
        // far fewer lines than accesses), never by topology. A dense
        // 128-node layout would hold 2^12 slots per directory before
        // the first access.
        let distinct_upper = c.cached + c.stats.evictions as usize + 1;
        assert!(
            c.footprint <= 3 * distinct_upper,
            "footprint {} not proportional to touched lines (~{}) for {} {} at {} nodes",
            c.footprint,
            distinct_upper,
            c.protocol,
            c.app,
            c.hypernodes
        );
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: ProtocolKind, h: usize) -> Cell {
        run_cell(kind, h, "fem", 1)
    }

    #[test]
    fn all_three_protocols_run_the_same_app_deterministically() {
        for kind in ProtocolKind::ALL {
            let a = quick(kind, 2);
            let b = quick(kind, 2);
            assert_eq!(a.cycles, b.cycles, "{kind}");
            assert_eq!(a.stats, b.stats, "{kind}");
            assert!(a.cycles > 0);
        }
    }

    #[test]
    fn protocol_foreign_counters_stay_zero() {
        let dash = quick(ProtocolKind::DashSci, 2);
        assert_eq!(dash.stats.snoops, 0);
        assert_eq!(dash.stats.updates, 0);
        let mesi = quick(ProtocolKind::Mesi, 2);
        assert!(mesi.stats.snoops > 0);
        assert_eq!(mesi.stats.updates, 0);
        let dragon = quick(ProtocolKind::Dragon, 2);
        assert!(dragon.stats.updates > 0);
    }

    #[test]
    fn footprint_follows_the_working_set_not_the_topology() {
        // Same problem, 16x the topology: the sparse structures must
        // not balloon with the address space. The per-CPU share of a
        // fixed problem shrinks as CPUs grow, so total tracked lines
        // stay in the same ballpark; a dense layout would jump by
        // 126 * 4096 directory slots.
        for kind in ProtocolKind::ALL {
            let small = quick(kind, 2);
            let big = quick(kind, 32);
            assert!(
                big.footprint < small.footprint * 8 + 4096,
                "{kind}: footprint {} at 32 nodes vs {} at 2",
                big.footprint,
                small.footprint
            );
        }
    }

    #[test]
    fn cells_run_at_256_cpus_under_every_protocol() {
        for kind in ProtocolKind::ALL {
            let c = run_cell(kind, 32, "nbody", 1);
            assert_eq!(c.cpus, 256);
            assert!(c.cycles > 0);
            assert!(c.stats.miss_partition_check(), "{kind}");
        }
    }

    #[test]
    fn json_is_reproducible_and_carries_every_cell() {
        // Byte-identity on the paper's testbed size; ci.sh double-runs
        // the full sweep and `cmp`s the report for the same property.
        let cells: Vec<Cell> = ProtocolKind::ALL.map(|k| quick(k, 2)).to_vec();
        let again: Vec<Cell> = ProtocolKind::ALL.map(|k| quick(k, 2)).to_vec();
        assert_eq!(to_json(&cells, 1), to_json(&again, 1));
        let json = to_json(&cells, 1);
        assert!(json.contains("\"experiment\": \"protocol\""));
        assert!(json.contains("\"footprint_lines\""));
        for k in ProtocolKind::ALL {
            assert!(json.contains(k.label()), "{json}");
        }
    }
}
