//! Backend validation — the port-layer counterpart of the figure
//! experiments. Three parts:
//!
//! 1. an application sweep priced on the backend selected with
//!    `--backend` (cycle-accurate machine or analytic [`FastPort`]),
//!    with host wall-clock per configuration;
//! 2. a fast-vs-cycle comparison asserting the analytic backend's
//!    hit/miss counts stay within the tolerance documented in
//!    [`spp_core::fastport`] (10%) on the swept workloads;
//! 3. the E11 trace cross-validation: record a full application step
//!    through [`TracePort`], replay the trace into a fresh machine,
//!    and assert cycles and [`spp_core::MemStats`] are bit-identical.
//!
//! The figure/table experiments always run on the cycle-accurate
//! backend — the paper anchors are cycle-model properties — so this
//! experiment is where `--backend fast` gets its semantics.

use std::time::Instant;

use crate::{emit, f, Backend, Opts, Table};
use pic::{PicProblem, SharedPic};
use spp_core::{FastPort, Machine, MemPort, MemStats, TracePort};
use spp_runtime::{Placement, Runtime, Team};

/// Thread counts of the validation sweep.
pub const PROCS: [usize; 4] = [1, 2, 4, 8];

/// Relative tolerance on total hit and miss counts between the
/// analytic and cycle-accurate backends (the contract documented in
/// `spp_core::fastport`).
pub const HIT_MISS_TOLERANCE: f64 = 0.10;

/// One swept configuration on one backend.
pub struct Point {
    /// Threads.
    pub procs: usize,
    /// Simulated cycles for the measured steps.
    pub cycles: u64,
    /// Memory-system counters at the end of the run.
    pub stats: MemStats,
    /// Host seconds spent simulating.
    pub host_secs: f64,
}

/// Run the shared-memory PIC workload on an arbitrary port backend.
pub fn collect_on<P: MemPort>(make: impl Fn() -> P, p: &PicProblem, steps: usize) -> Vec<Point> {
    PROCS
        .iter()
        .map(|&procs| {
            let t0 = Instant::now();
            let mut rt = Runtime::new(make());
            let team = Team::place(rt.machine.config(), procs, &Placement::HighLocality);
            let mut sim = SharedPic::new(&mut rt, p.clone(), &team);
            let r = sim.run(&mut rt, &team, steps);
            Point {
                procs,
                cycles: r.elapsed,
                stats: *rt.machine.stats(),
                host_secs: t0.elapsed().as_secs_f64(),
            }
        })
        .collect()
}

/// Total misses as the analytic backend groups them: the fast model
/// has no GCB, so cycle-side GCB hits fold into the miss count.
fn misses(s: &MemStats) -> u64 {
    s.local_misses + s.sci_fetches + s.gcb_hits
}

fn rel_dev(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (a as f64 - b as f64).abs() / b as f64
    }
}

/// Regenerate the backend-validation experiment.
pub fn run(o: &Opts) -> String {
    let mut out = String::new();
    let prob = PicProblem::tiny();

    // Part 1: the sweep on the selected backend.
    let sweep = match o.backend {
        Backend::Cycle => collect_on(|| Machine::spp1000(2), &prob, o.steps),
        Backend::Fast => collect_on(|| FastPort::spp1000(2), &prob, o.steps),
    };
    let mut t = Table::new(&["procs", "Mcycles", "hits", "misses", "host ms"]);
    for p in &sweep {
        t.row(vec![
            p.procs.to_string(),
            f(p.cycles as f64 / 1e6, 2),
            p.stats.hits.to_string(),
            misses(&p.stats).to_string(),
            f(p.host_secs * 1e3, 1),
        ]);
    }
    out.push_str(&emit(
        &format!(
            "Backend sweep: PIC 8x8x8 on the `{}` backend",
            o.backend.name()
        ),
        &t.render(),
    ));

    // Part 1b: the batched-run fast path. The run APIs collapse
    // consecutive same-line accesses into one coherence transaction
    // plus constant-cost hit accounting; cycles and stats must not
    // move while host time drops on streaming traffic.
    {
        // One cold fill, then repeated read sweeps by CPUs on both
        // hypernodes. After the first sweep the lines are shared and
        // every access hits — the streaming case the run APIs target,
        // where batching replaces one priced port call per element by
        // one per 32-byte line.
        const N: u64 = 1 << 16;
        const SWEEPS: usize = 48;
        let stream = |batched: bool| {
            let t0 = Instant::now();
            let mut m = Machine::spp1000(2);
            let r = m.alloc(spp_core::MemClass::FarShared, 8 * N);
            let mut cycles = 0u64;
            if batched {
                cycles += m.write_run(spp_core::CpuId(0), r.addr(0), 8, N as usize);
            } else {
                for i in 0..N {
                    cycles += m.write(spp_core::CpuId(0), r.addr(8 * i));
                }
            }
            for _ in 0..SWEEPS {
                for cpu in [0u16, 8] {
                    if batched {
                        cycles += m.read_run(spp_core::CpuId(cpu), r.addr(0), 8, N as usize);
                    } else {
                        for i in 0..N {
                            cycles += m.read(spp_core::CpuId(cpu), r.addr(8 * i));
                        }
                    }
                }
            }
            (cycles, *m.stats(), t0.elapsed().as_secs_f64())
        };
        // Interleaved best-of-3 trials: host timings on a shared box
        // are noisy, the minimum is the honest cost of each path.
        let (mut bt, mut st) = (f64::INFINITY, f64::INFINITY);
        let (mut bc, mut bs, mut sc, mut ss) = (0, MemStats::default(), 0, MemStats::default());
        for _ in 0..3 {
            let (c, s, t) = stream(true);
            (bc, bs) = (c, s);
            bt = bt.min(t);
            let (c, s, t) = stream(false);
            (sc, ss) = (c, s);
            st = st.min(t);
        }
        assert_eq!(bc, sc, "batched runs must not move the cycle total");
        assert_eq!(bs, ss, "batched runs must not move MemStats");

        // And end-to-end through an application: the runtime batching
        // toggle replays the identical access stream both ways.
        use ppm::{PpmProblem, SharedPpm};
        let app = |batching: bool| {
            let mut rt = Runtime::new(Machine::spp1000(2)).with_batching(batching);
            let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
            let mut sim = SharedPpm::new(&mut rt, PpmProblem::tiny(), &team);
            let r = sim.run(&mut rt, &team, o.steps);
            (r.elapsed, *rt.machine.stats())
        };
        assert_eq!(app(true), app(false), "PPM batched vs scalar");
        out.push_str(&emit(
            "Backend fast path: batched vs scalar access (cycle backend)",
            &format!(
                "one fill plus 48 two-CPU read sweeps over a 64K-element region\n\
                 (best of 3 interleaved trials): scalar {:.1} ms host, batched\n\
                 {:.1} ms host ({:.2}x) — identical {} simulated cycles and\n\
                 bit-identical MemStats either way; PPM end-to-end agrees\n\
                 batched vs scalar.",
                st * 1e3,
                bt * 1e3,
                st / bt.max(1e-9),
                sc,
            ),
        ));
    }

    // Part 2: fast-vs-cycle hit/miss tolerance.
    let cycle = collect_on(|| Machine::spp1000(2), &prob, o.steps);
    let fast = collect_on(|| FastPort::spp1000(2), &prob, o.steps);
    let mut t = Table::new(&[
        "procs",
        "cycle hits",
        "fast hits",
        "dev",
        "cycle misses",
        "fast misses",
        "dev",
        "fast host speedup",
    ]);
    let mut worst = 0.0f64;
    for (c, q) in cycle.iter().zip(&fast) {
        let dh = rel_dev(q.stats.hits, c.stats.hits);
        let dm = rel_dev(misses(&q.stats), misses(&c.stats));
        worst = worst.max(dh).max(dm);
        t.row(vec![
            c.procs.to_string(),
            c.stats.hits.to_string(),
            q.stats.hits.to_string(),
            f(dh * 100.0, 2) + "%",
            misses(&c.stats).to_string(),
            misses(&q.stats).to_string(),
            f(dm * 100.0, 2) + "%",
            f(c.host_secs / q.host_secs.max(1e-9), 1) + "x",
        ]);
        assert_eq!(q.stats.reads, c.stats.reads, "access streams must match");
        assert_eq!(q.stats.writes, c.stats.writes, "access streams must match");
        assert!(
            dh <= HIT_MISS_TOLERANCE && dm <= HIT_MISS_TOLERANCE,
            "fast backend outside tolerance at {} threads: hits dev {:.3}, misses dev {:.3}",
            c.procs,
            dh,
            dm
        );
    }
    out.push_str(&emit(
        "Backend validation: analytic vs cycle-accurate hit/miss counts",
        &format!(
            "{}\nworst deviation {:.2}% (tolerance {:.0}%); identical read/write streams.",
            t.render(),
            worst * 100.0,
            HIT_MISS_TOLERANCE * 100.0
        ),
    ));

    // Part 3: E11 — trace record then replay, bit-identical.
    let mut rt = Runtime::new(TracePort::new(Machine::spp1000(2)));
    let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
    let mut sim = SharedPic::new(&mut rt, prob.clone(), &team);
    let rep = sim.run(&mut rt, &team, 1);
    let recorded = rt.machine.total_cycles();
    let (machine, trace) = rt.machine.into_parts();
    let mut fresh = Machine::spp1000(2);
    let replayed = trace.replay(&mut fresh);
    assert_eq!(replayed, recorded, "trace replay must reproduce cycles");
    assert_eq!(
        fresh.stats, machine.stats,
        "trace replay must reproduce MemStats bit-identically"
    );
    out.push_str(&emit(
        "Backend validation: trace record/replay (E11)",
        &format!(
            "recorded {} port records ({} bytes) over one 4-thread PIC step\n\
             ({:.2} simulated Mcycles); replay into a fresh machine reproduced\n\
             {} port cycles and all MemStats counters bit-identically.",
            trace.records(),
            trace.len_bytes(),
            rep.elapsed as f64 / 1e6,
            replayed,
        ),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_experiment_passes_on_both_backends() {
        let o = Opts {
            steps: 1,
            ..Opts::default()
        };
        let cycle_out = run(&o);
        assert!(cycle_out.contains("`cycle` backend"));
        let o = Opts {
            backend: Backend::Fast,
            ..o
        };
        let fast_out = run(&o);
        assert!(fast_out.contains("`fast` backend"));
        assert!(fast_out.contains("bit-identically"));
    }

    #[test]
    fn deviation_helper_handles_zero() {
        assert_eq!(rel_dev(0, 0), 0.0);
        assert!(rel_dev(1, 0).is_infinite());
        assert!((rel_dev(11, 10) - 0.1).abs() < 1e-12);
    }
}
