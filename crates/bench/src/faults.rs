//! Fault-injection reproducibility (`repro-faults`): PIC and N-body
//! under a seeded [`FaultPlan`] are bit-identical run to run, and the
//! retry overhead the reliability layers pay scales with the injected
//! fault rates. This is the demonstration that fault injection
//! perturbs simulated *cost* deterministically without perturbing
//! simulated *state*.

use crate::{emit, f, Opts, Table};
use nbody::{NbodyProblem, SharedNbody};
use pic::pvm::PvmPic;
use pic::{PicProblem, SharedPic};
use spp_core::{CpuId, FaultPlan, Machine};
use spp_pvm::Pvm;
use spp_runtime::{Placement, Runtime, Team};

/// Outcome of one workload run under a fault plan.
pub struct FaultRun {
    /// Elapsed simulated cycles.
    pub elapsed: u64,
    /// Sustained Mflop/s.
    pub mflops: f64,
    /// SCI ring stalls the plan injected.
    pub ring_stalls: u64,
    /// PVM send retries paid (zero for shared-memory workloads).
    pub retries: u64,
}

impl FaultRun {
    /// Bit-exact equality (u64 cycles plus the raw bits of the rate).
    pub fn bit_identical(&self, other: &FaultRun) -> bool {
        self.elapsed == other.elapsed
            && self.mflops.to_bits() == other.mflops.to_bits()
            && self.ring_stalls == other.ring_stalls
            && self.retries == other.retries
    }
}

/// Shared-memory PIC (16x16x16 mesh, 8 CPUs across two hypernodes)
/// under `plan`.
pub fn pic_shared(plan: FaultPlan, steps: usize) -> FaultRun {
    let mut rt = Runtime::new(Machine::spp1000(2).with_faults(plan));
    let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
    let mut sim = SharedPic::new(&mut rt, PicProblem::with_mesh(16, 16, 16), &team);
    sim.step(&mut rt, &team); // warm-up
    let r = sim.run(&mut rt, &team, steps);
    FaultRun {
        elapsed: r.elapsed,
        mflops: r.mflops(),
        ring_stalls: rt.machine.stats.ring_stalls,
        retries: 0,
    }
}

/// Shared-memory N-body (8192 bodies, 8 CPUs across two hypernodes)
/// under `plan`.
pub fn nbody_shared(plan: FaultPlan, steps: usize) -> FaultRun {
    let mut rt = Runtime::new(Machine::spp1000(2).with_faults(plan));
    let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
    let mut sim = SharedNbody::new(&mut rt, NbodyProblem::with_n(8192), &team);
    sim.step(&mut rt, &team); // warm-up
    let r = sim.run(&mut rt, &team, steps);
    FaultRun {
        elapsed: r.elapsed,
        mflops: r.mflops(),
        ring_stalls: rt.machine.stats.ring_stalls,
        retries: 0,
    }
}

/// PVM PIC (16x16x16 mesh, 8 tasks across two hypernodes) under
/// `plan`.
pub fn pic_pvm(plan: FaultPlan, steps: usize) -> FaultRun {
    let cpus: Vec<CpuId> = (0..8u16).map(CpuId).collect();
    let mut pvm = Pvm::new(Machine::spp1000(2).with_faults(plan), &cpus);
    let mut sim = PvmPic::new(&mut pvm, PicProblem::with_mesh(16, 16, 16));
    sim.step(&mut pvm); // warm-up
    let r = sim.run(&mut pvm, steps);
    FaultRun {
        elapsed: r.elapsed,
        mflops: r.mflops(),
        ring_stalls: pvm.machine.stats.ring_stalls,
        retries: pvm.fault_stats().retries,
    }
}

/// One determinism case: a workload under `FaultPlan::standard(seed)`,
/// run twice.
pub struct CaseResult {
    /// Workload label.
    pub workload: &'static str,
    /// Fault-plan seed.
    pub seed: u64,
    /// First run.
    pub a: FaultRun,
    /// Second run (must be bit-identical to the first).
    pub b: FaultRun,
}

impl CaseResult {
    /// Did the two runs match bit for bit?
    pub fn identical(&self) -> bool {
        self.a.bit_identical(&self.b)
    }
}

/// Run the determinism sweep: each workload twice under each seed.
pub fn determinism_sweep(steps: usize) -> Vec<CaseResult> {
    let mut cases = Vec::new();
    for seed in [42u64, 43] {
        type Case = (&'static str, Box<dyn Fn() -> FaultRun>);
        let runners: [Case; 3] = [
            (
                "PIC shared",
                Box::new(move || pic_shared(FaultPlan::standard(seed), steps)),
            ),
            (
                "N-body shared",
                Box::new(move || nbody_shared(FaultPlan::standard(seed), steps)),
            ),
            (
                "PIC PVM",
                Box::new(move || pic_pvm(FaultPlan::standard(seed), steps)),
            ),
        ];
        for (workload, runner) in runners {
            cases.push(CaseResult {
                workload,
                seed,
                a: runner(),
                b: runner(),
            });
        }
    }
    cases
}

/// Machine-readable form of the determinism sweep (the
/// `BENCH_faults.json` the `repro-faults` binary writes under
/// `target/repro`, following the `BENCH_repro.json` convention).
pub fn to_json(cases: &[CaseResult], steps: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {},\n  \"experiment\": \"faults\",\n",
        crate::BENCH_SCHEMA_VERSION
    ));
    out.push_str(&format!(
        "  \"steps\": {},\n  \"passed\": {},\n  \"cases\": [\n",
        steps,
        cases.iter().all(|c| c.identical())
    ));
    for (i, c) in cases.iter().enumerate() {
        let comma = if i + 1 < cases.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"seed\": {}, \"identical\": {}, \
             \"elapsed\": {}, \"ring_stalls\": {}, \"retries\": {}}}{comma}\n",
            c.workload,
            c.seed,
            c.identical(),
            c.a.elapsed,
            c.a.ring_stalls,
            c.a.retries
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `BENCH_faults.json` under `dir` (created if needed). Returns
/// the JSON path.
pub fn write_report(
    cases: &[CaseResult],
    steps: usize,
    dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let json = dir.join("BENCH_faults.json");
    std::fs::write(&json, to_json(cases, steps))?;
    Ok(json)
}

/// Regenerate the fault-injection reproducibility report. Writes
/// `BENCH_faults.json` so a `repro-all` or scenario-engine sweep
/// leaves the same artifact as the standalone binary, then panics if
/// any case was not bit-identical so the harness records a FAIL.
pub fn run(o: &Opts) -> String {
    let cases = determinism_sweep(o.steps);
    let mut text = report(o, &cases);
    match write_report(&cases, o.steps, &crate::repro_dir()) {
        Ok(json) => text.push_str(&format!("[report written to {}]\n", json.display())),
        Err(e) => text.push_str(&format!("[could not write report: {e}]\n")),
    }
    assert!(
        cases.iter().all(|c| c.identical()),
        "fault determinism sweep found a non-reproducible case"
    );
    text
}

/// Render the full report from an already-computed determinism sweep
/// (lets the `repro-faults` binary print the tables and write the JSON
/// from one sweep).
pub fn report(o: &Opts, cases: &[CaseResult]) -> String {
    let mut out = String::new();

    // Determinism: the same seed reproduces the exact same schedule
    // and therefore bit-identical results; different seeds differ.
    let mut t = Table::new(&[
        "workload",
        "seed",
        "run A cycles",
        "run B cycles",
        "identical",
        "ring stalls",
        "retries",
    ]);
    for c in cases {
        t.row(vec![
            c.workload.to_string(),
            c.seed.to_string(),
            c.a.elapsed.to_string(),
            c.b.elapsed.to_string(),
            if c.identical() { "yes" } else { "NO" }.to_string(),
            c.a.ring_stalls.to_string(),
            c.a.retries.to_string(),
        ]);
    }
    out.push_str(&emit(
        "repro-faults: seeded fault schedules are reproducible",
        &format!(
            "{}\nEach workload runs twice under FaultPlan::standard(seed): elapsed\n\
             cycles, Mflop/s bits, and fault counters must match exactly.",
            t.render()
        ),
    ));

    // Retry overhead scales with the injected message drop rate (the
    // PVM reliability layer pays a priced timeout per retry).
    let clean = pic_pvm(FaultPlan::new(7), o.steps);
    let mut t = Table::new(&["drop prob", "cycles", "retries", "overhead vs clean"]);
    for drop in [0.0f64, 0.05, 0.15] {
        let r = pic_pvm(
            FaultPlan::new(7).with_message_faults(drop, drop / 2.0),
            o.steps,
        );
        t.row(vec![
            f(drop, 2),
            r.elapsed.to_string(),
            r.retries.to_string(),
            format!(
                "{}%",
                f((r.elapsed as f64 / clean.elapsed as f64 - 1.0) * 100.0, 1)
            ),
        ]);
    }
    out.push_str(&emit(
        "repro-faults: PVM retry overhead vs drop rate",
        &format!(
            "{}\nHigher drop probability means more priced retries and a longer\n\
             simulated run; the clean (0.00) row matches a fault-free session.",
            t.render()
        ),
    ));

    // Spawn failures: the runtime's fork path retries with backoff;
    // overhead shows up as fork-join elapsed time.
    let mut t = Table::new(&["spawn-fail prob", "fork-join us", "spawn retries"]);
    for prob in [0.0f64, 0.2, 0.4] {
        let mut rt = Runtime::new(
            Machine::spp1000(2).with_faults(FaultPlan::new(9).with_spawn_failures(prob)),
        );
        let team = Team::place(rt.machine.config(), 16, &Placement::Uniform);
        let rep = rt.team_fork_join(&team, |ctx| ctx.cycles(100));
        t.row(vec![
            f(prob, 1),
            f(rep.elapsed as f64 / 100.0, 1),
            rep.spawn_retries.to_string(),
        ]);
    }
    out.push_str(&emit(
        "repro-faults: runtime spawn-retry overhead",
        &format!(
            "{}\nA 16-thread fork across two hypernodes under increasing spawn\n\
             failure rates: each retry pays the spawn cost again plus an\n\
             exponential backoff.",
            t.render()
        ),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_fault_seed_is_bit_identical() {
        let a = pic_shared(FaultPlan::standard(42), 1);
        let b = pic_shared(FaultPlan::standard(42), 1);
        assert!(a.bit_identical(&b));
        assert!(
            a.ring_stalls > 0,
            "standard plan should stall some ring ops"
        );
        let c = nbody_shared(FaultPlan::standard(42), 1);
        let d = nbody_shared(FaultPlan::standard(42), 1);
        assert!(c.bit_identical(&d));
    }

    #[test]
    fn different_fault_seeds_differ() {
        let a = pic_shared(FaultPlan::standard(42), 1);
        let b = pic_shared(FaultPlan::standard(1042), 1);
        assert_ne!(
            (a.elapsed, a.ring_stalls),
            (b.elapsed, b.ring_stalls),
            "different seeds should give different schedules"
        );
    }

    #[test]
    fn faults_only_add_cost() {
        let clean = pic_shared(FaultPlan::new(0), 1);
        let faulty = pic_shared(FaultPlan::standard(42), 1);
        assert_eq!(clean.ring_stalls, 0);
        assert!(faulty.elapsed > clean.elapsed);
    }

    #[test]
    fn json_report_is_well_formed_and_lands_on_disk() {
        let cases = vec![CaseResult {
            workload: "PIC shared",
            seed: 42,
            a: pic_shared(FaultPlan::standard(42), 1),
            b: pic_shared(FaultPlan::standard(42), 1),
        }];
        let j = to_json(&cases, 1);
        assert!(j.contains("\"passed\": true"), "{j}");
        assert!(j.contains("\"workload\": \"PIC shared\""), "{j}");
        assert!(j.trim_end().ends_with('}'));
        let dir = std::env::temp_dir().join("spp-faults-report-test");
        let json = write_report(&cases, 1, &dir).unwrap();
        assert!(json.ends_with("BENCH_faults.json"));
        assert!(json.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pvm_retry_overhead_scales_with_drop_rate() {
        let r0 = pic_pvm(FaultPlan::new(7), 1);
        let r5 = pic_pvm(FaultPlan::new(7).with_message_faults(0.05, 0.0), 1);
        let r15 = pic_pvm(FaultPlan::new(7).with_message_faults(0.15, 0.0), 1);
        assert_eq!(r0.retries, 0);
        assert!(r5.retries > 0);
        assert!(r15.retries > r5.retries);
        assert!(r15.elapsed > r5.elapsed);
        assert!(r5.elapsed > r0.elapsed);
    }
}
