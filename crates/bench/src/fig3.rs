//! Figure 3 — barrier synchronization cost: last-in/first-out and
//! last-in/last-out, for high locality and uniform placement, plus the
//! single-hypernode curve of the authors' earlier study.

use crate::{emit, f, Opts, Table};
use spp_core::{CpuId, Cycles, Machine, NodeId};
use spp_runtime::{Placement, RuntimeCostModel, SimBarrier, Team};

/// One barrier measurement.
pub struct Point {
    /// Thread count.
    pub n: usize,
    /// Last in - first out, µs.
    pub lifo: f64,
    /// Last in - last out, µs.
    pub lilo: f64,
}

/// Measure the barrier for 1..=16 threads under `placement` on a
/// machine with `nodes` hypernodes.
pub fn collect(nodes: usize, placement: &Placement) -> Vec<Point> {
    let mut out = Vec::new();
    let max = 8 * nodes;
    for n in 1..=max.min(16) {
        let mut m = Machine::spp1000(nodes);
        let bar = SimBarrier::new(&mut m, NodeId(0));
        let cost = RuntimeCostModel::spp1000();
        let team = Team::place(m.config(), n, placement);
        // Arrivals staggered 1 us apart: the "minimum observed"
        // protocol of §4.2 (the last thread finds the semaphore free).
        let arrivals: Vec<(CpuId, Cycles)> = team
            .cpus()
            .iter()
            .enumerate()
            .map(|(i, c)| (*c, i as u64 * 100))
            .collect();
        // Warm the flag/semaphore lines, then measure.
        bar.simulate(&mut m, &cost, &arrivals);
        let r = bar.simulate(&mut m, &cost, &arrivals);
        out.push(Point {
            n,
            lifo: spp_core::cycles_to_us(r.lifo()),
            lilo: spp_core::cycles_to_us(r.lilo()),
        });
    }
    out
}

/// Regenerate Figure 3.
pub fn run(_o: &Opts) -> String {
    let hl = collect(2, &Placement::HighLocality);
    let un = collect(2, &Placement::Uniform);
    let single = collect(1, &Placement::HighLocality);
    let mut t = Table::new(&[
        "threads",
        "HL lifo",
        "HL lilo",
        "Uni lifo",
        "Uni lilo",
        "1-node lifo",
        "1-node lilo",
    ]);
    for (i, p) in hl.iter().enumerate() {
        let u = &un[i];
        let (sl, sll) = single
            .get(i)
            .map(|s| (f(s.lifo, 2), f(s.lilo, 2)))
            .unwrap_or_default();
        t.row(vec![
            p.n.to_string(),
            f(p.lifo, 2),
            f(p.lilo, 2),
            f(u.lifo, 2),
            f(u.lilo, 2),
            sl,
            sll,
        ]);
    }
    let body = format!(
        "{}\n(all times in us)\npaper anchors: lifo ~3.5 us on one hypernode (+~1 us with a second),\n\
         release ~2 us per thread beyond the second.",
        t.render()
    );
    emit("Figure 3: barrier synchronization cost", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_matches_paper() {
        let single = collect(1, &Placement::HighLocality);
        let hl = collect(2, &Placement::HighLocality);
        // Single-node lifo ~3.5 us flat for n >= 2.
        for p in single.iter().filter(|p| p.n >= 2) {
            assert!((2.5..=4.5).contains(&p.lifo), "n={} lifo={}", p.n, p.lifo);
        }
        // Release slope ~2 us/thread on one node.
        let p4 = single.iter().find(|p| p.n == 4).unwrap();
        let p8 = single.iter().find(|p| p.n == 8).unwrap();
        let slope = (p8.lilo - p4.lilo) / 4.0;
        assert!((1.4..=2.6).contains(&slope), "slope {slope}");
        // Crossing to a second node costs extra lifo.
        let hl10 = hl.iter().find(|p| p.n == 10).unwrap();
        let s8 = single.iter().find(|p| p.n == 8).unwrap();
        assert!(hl10.lifo > s8.lifo, "{} vs {}", hl10.lifo, s8.lifo);
    }

    #[test]
    fn uniform_lilo_exceeds_high_locality() {
        let hl = collect(2, &Placement::HighLocality);
        let un = collect(2, &Placement::Uniform);
        let h8 = hl.iter().find(|p| p.n == 8).unwrap();
        let u8 = un.iter().find(|p| p.n == 8).unwrap();
        assert!(u8.lilo > h8.lilo, "{} vs {}", u8.lilo, h8.lilo);
    }
}
