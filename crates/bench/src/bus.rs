//! Why scalable shared memory: a bus-SMP saturation analysis.
//!
//! The paper's introduction frames the SPP-1000 against "bus based
//! systems of limited scaling employing snooping protocols such as
//! MESI". This study quantifies that contrast: we measure each
//! application's real per-step miss traffic on the simulated SPP-1000,
//! then ask what a snooping-bus SMP built from the *same* CPUs and
//! caches could do with it. On a bus, every miss and upgrade occupies
//! the one shared resource for a line-transfer time; the step cannot
//! finish faster than the bus can drain its transactions, so the bus
//! curve flattens at `work / occupancy` while the SPP's distributed
//! directories and rings keep scaling.

use crate::{emit, f, Opts, Table};
use pic::{PicProblem, SharedPic};
use spp_core::Cycles;
use spp_runtime::{Placement, Runtime, Team};

/// Bus parameters for a same-technology snooping SMP.
#[derive(Debug, Clone)]
pub struct BusModel {
    /// Bus occupancy of one line transfer (arbitration + 32 B at
    /// memory speed), cycles.
    pub transfer: Cycles,
    /// Bus occupancy of one invalidation/upgrade transaction.
    pub upgrade: Cycles,
}

impl BusModel {
    /// A generous mid-90s bus: ~30 cycles per line transfer (the
    /// SPP's own memory takes 55 from a single requester).
    pub fn mid90s() -> Self {
        BusModel {
            transfer: 30,
            upgrade: 10,
        }
    }
}

/// Per-step traffic profile of a workload, measured on the simulator.
#[derive(Debug, Clone, Copy)]
pub struct Traffic {
    /// Single-processor busy cycles per step.
    pub work: f64,
    /// Line-transfer transactions per step (all misses).
    pub misses: f64,
    /// Upgrade transactions per step.
    pub upgrades: f64,
}

/// Measure the PIC small problem's per-step traffic at one processor.
pub fn measure_pic_traffic() -> Traffic {
    let mut rt = Runtime::spp1000(1);
    let team = Team::place(rt.machine.config(), 1, &Placement::HighLocality);
    let mut sim = SharedPic::new(&mut rt, PicProblem::with_mesh(32, 32, 32), &team);
    sim.step(&mut rt, &team); // warm
    let before = rt.machine.stats;
    let rep = sim.step(&mut rt, &team);
    let d = rt.machine.stats.since(&before);
    Traffic {
        work: rep.elapsed as f64,
        misses: d.misses() as f64,
        upgrades: d.upgrades as f64,
    }
}

/// Predicted bus-SMP time per step at `p` processors: compute shrinks
/// as 1/p, but the whole step's transactions must serialize through
/// the one bus. We use the optimistic bound `max(compute, occupancy)`
/// — no queueing delay charged below saturation, which is *generous*
/// to the bus; the saturation ceiling alone makes the point.
pub fn bus_time(t: &Traffic, bus: &BusModel, p: usize) -> f64 {
    let occupancy = t.misses * bus.transfer as f64 + t.upgrades * bus.upgrade as f64;
    let compute = t.work / p as f64;
    compute.max(occupancy)
}

/// Run the comparison.
pub fn run(o: &Opts) -> String {
    let traffic = measure_pic_traffic();
    let bus = BusModel::mid90s();
    // SPP curve: measured on the simulator.
    let spp: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&p| {
            let mut rt = Runtime::spp1000(2);
            let team = Team::place(rt.machine.config(), p, &Placement::HighLocality);
            let mut sim = SharedPic::new(&mut rt, PicProblem::with_mesh(32, 32, 32), &team);
            sim.step(&mut rt, &team);
            let r = sim.run(&mut rt, &team, o.steps);
            (p, r.elapsed as f64 / o.steps as f64)
        })
        .collect();
    let base = spp[0].1;
    let mut t = Table::new(&["procs", "SPP speedup", "bus-SMP speedup", "bus utilization"]);
    for &(p, spp_time) in &spp {
        let bt = bus_time(&traffic, &bus, p);
        let occ = traffic.misses * bus.transfer as f64 + traffic.upgrades * bus.upgrade as f64;
        let rho = (occ / bt).min(1.0);
        t.row(vec![
            p.to_string(),
            f(base / spp_time, 2),
            f(traffic.work / bt, 2),
            f(rho, 2),
        ]);
    }
    let body = format!(
        "{}\nPIC 32x32x32. The bus-SMP model is built from the same CPUs and caches\n\
         with a generous 30-cycle bus line transfer; its speedup rolls over as the\n\
         one bus saturates (utilization -> 1), while the SPP's distributed\n\
         directories + SCI rings keep absorbing the same traffic — the paper's\n\
         opening argument, quantified.",
        t.render()
    );
    emit(
        "Bus-SMP saturation analysis (the paper's introductory contrast)",
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_traffic() -> Traffic {
        Traffic {
            work: 10_000_000.0,
            misses: 120_000.0,
            upgrades: 30_000.0,
        }
    }

    #[test]
    fn bus_scales_at_low_counts_then_saturates() {
        let t = toy_traffic();
        let bus = BusModel::mid90s();
        let s = |p: usize| t.work / bus_time(&t, &bus, p);
        assert!((s(2) - 2.0).abs() < 1e-9, "2-proc bus speedup {}", s(2));
        // Saturation: the occupancy is 3.9 M cycles; work/p falls below
        // it past p ~ 2.5, so speedup caps at work/occupancy ~ 2.56.
        assert!(
            (s(16) - 10.0 / 3.9).abs() < 1e-9,
            "16-proc bus speedup {}",
            s(16)
        );
        assert!(s(16) <= s(8) + 1e-9, "no scaling after saturation");
    }

    #[test]
    fn bus_time_is_monotone_in_traffic() {
        let bus = BusModel::mid90s();
        let light = Traffic {
            misses: 10_000.0,
            ..toy_traffic()
        };
        let heavy = Traffic {
            misses: 500_000.0,
            ..toy_traffic()
        };
        assert!(bus_time(&heavy, &bus, 8) > bus_time(&light, &bus, 8));
    }

    #[test]
    fn spp_beats_the_bus_at_sixteen() {
        // Integration: real measured traffic, both models.
        let traffic = measure_pic_traffic();
        let bus = BusModel::mid90s();
        let bus16 = traffic.work / bus_time(&traffic, &bus, 16);
        // The SPP's measured 16-proc speedup (from fig6) is >10;
        // assert the bus can't reach even that ballpark.
        assert!(
            bus16 < 10.0,
            "bus-SMP 16-proc speedup {bus16} should saturate below the SPP's"
        );
    }
}
