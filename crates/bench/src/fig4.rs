//! Figure 4 — round-trip PVM message time vs. message size, within a
//! hypernode and across the SCI interconnect.

use crate::{emit, f, Opts, Table};
use spp_core::CpuId;
use spp_pvm::Pvm;

/// Round-trip time in µs for one (bytes, intra-node?) combination.
pub fn round_trip_us(bytes: usize, same_node: bool) -> f64 {
    let peer = if same_node { CpuId(1) } else { CpuId(8) };
    let mut pvm = Pvm::spp1000(2, &[CpuId(0), peer]);
    spp_core::cycles_to_us(pvm.round_trip(0, 1, bytes, 8))
}

/// Message sizes swept (bytes).
pub const SIZES: [usize; 9] = [8, 64, 512, 2048, 8192, 16384, 32768, 65536, 131072];

/// Regenerate Figure 4.
pub fn run(_o: &Opts) -> String {
    let mut t = Table::new(&["bytes", "local RT (us)", "global RT (us)", "ratio"]);
    for b in SIZES {
        let l = round_trip_us(b, true);
        let g = round_trip_us(b, false);
        t.row(vec![b.to_string(), f(l, 1), f(g, 1), f(g / l, 2)]);
    }
    let body = format!(
        "{}\npaper anchors: ~30 us local and ~70 us global round trip (ratio 2.3)\n\
         below 8 KB; substantial page-granular growth beyond 8 KB.",
        t.render()
    );
    emit("Figure 4: round-trip message passing", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateau_below_8k() {
        let a = round_trip_us(8, true);
        let b = round_trip_us(8192, true);
        assert!((a - b).abs() < 2.0, "local plateau: {a} vs {b}");
        assert!((25.0..=35.0).contains(&a), "local RT = {a}");
        let g = round_trip_us(1024, false);
        assert!((60.0..=80.0).contains(&g), "global RT = {g}");
    }

    #[test]
    fn growth_beyond_8k() {
        let r16 = round_trip_us(16384, true);
        let r64 = round_trip_us(65536, true);
        assert!(r16 > 45.0, "16 KB RT = {r16}");
        assert!(r64 > 2.0 * r16, "64 KB RT = {r64}");
    }

    #[test]
    fn global_local_ratio_near_2_3() {
        let ratio = round_trip_us(1024, false) / round_trip_us(1024, true);
        assert!((1.9..=2.8).contains(&ratio), "ratio = {ratio}");
    }
}
