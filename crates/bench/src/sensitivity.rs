//! Sensitivity of the reproduced results to the calibrated latency
//! constants: the paper's published numbers pin our constants only
//! within bands, so we perturb each key constant +/-30% and check which
//! conclusions move. Ratios and shapes should be robust; absolute
//! microseconds shift proportionally (as expected).

use crate::{emit, f, Opts, Table};
use pic::{PicProblem, SharedPic};
use spp_core::{CpuId, Cycles, LatencyModel, Machine, MachineConfig, NodeId};
use spp_runtime::{Placement, Runtime, RuntimeCostModel, SimBarrier, Team};

/// Quantities re-measured under a perturbed latency model.
#[derive(Debug, Clone, Copy)]
pub struct Outcome {
    /// Global:local miss ratio (paper claim: ~8).
    pub miss_ratio: f64,
    /// Full-machine barrier release, µs.
    pub barrier_lilo_us: f64,
    /// PIC 8-processor Mflop/s (16x16x16 mesh).
    pub pic8_mflops: f64,
}

/// Measure the sensitivity triplet under `lat`.
pub fn measure(lat: LatencyModel) -> Outcome {
    let mut cfg = MachineConfig::spp1000(2);
    cfg.latency = lat.clone();
    // Miss ratio.
    let mut m = Machine::new(cfg.clone());
    let near = m.alloc(spp_core::MemClass::NearShared { node: NodeId(0) }, 4096);
    let far = m.alloc(spp_core::MemClass::NearShared { node: NodeId(1) }, 4096);
    let local = m.read(CpuId(0), near.addr(0));
    let remote = m.read(CpuId(0), far.addr(0));
    // Barrier.
    let mut m2 = Machine::new(cfg.clone());
    let bar = SimBarrier::new(&mut m2, NodeId(0));
    let cost = RuntimeCostModel::spp1000();
    let arrivals: Vec<(CpuId, Cycles)> = (0..16u16).map(|i| (CpuId(i), i as u64 * 100)).collect();
    bar.simulate(&mut m2, &cost, &arrivals);
    let lilo = spp_core::cycles_to_us(bar.simulate(&mut m2, &cost, &arrivals).lilo());
    // PIC at 8 procs.
    let mut rt = Runtime::new(Machine::new(cfg));
    let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
    let mut sim = SharedPic::new(&mut rt, PicProblem::with_mesh(16, 16, 16), &team);
    sim.step(&mut rt, &team);
    let r = sim.run(&mut rt, &team, 1);
    Outcome {
        miss_ratio: remote as f64 / local as f64,
        barrier_lilo_us: lilo,
        pic8_mflops: r.mflops(),
    }
}

fn scaled(factor: f64) -> [(&'static str, LatencyModel); 4] {
    let base = LatencyModel::spp1000();
    let s = |v: Cycles| ((v as f64) * factor).round().max(1.0) as Cycles;
    [
        (
            "local_miss",
            LatencyModel {
                local_miss: s(base.local_miss),
                mem_access: s(base.mem_access),
                ..base.clone()
            },
        ),
        (
            "sci_base",
            LatencyModel {
                sci_base: s(base.sci_base),
                ..base.clone()
            },
        ),
        (
            "ring_hop",
            LatencyModel {
                ring_hop: s(base.ring_hop),
                ..base.clone()
            },
        ),
        (
            "inv_local",
            LatencyModel {
                inv_local: s(base.inv_local),
                ..base
            },
        ),
    ]
}

/// Run the sensitivity sweep.
pub fn run(_o: &Opts) -> String {
    let base = measure(LatencyModel::spp1000());
    let mut t = Table::new(&[
        "perturbation",
        "miss ratio",
        "barrier lilo (us)",
        "PIC 8p MF/s",
    ]);
    t.row(vec![
        "baseline".into(),
        f(base.miss_ratio, 2),
        f(base.barrier_lilo_us, 1),
        f(base.pic8_mflops, 1),
    ]);
    for factor in [0.7f64, 1.3] {
        for (name, lat) in scaled(factor) {
            let o = measure(lat);
            t.row(vec![
                format!("{name} x{factor}"),
                f(o.miss_ratio, 2),
                f(o.barrier_lilo_us, 1),
                f(o.pic8_mflops, 1),
            ]);
        }
    }
    let body = format!(
        "{}\nEach latency constant perturbed by -30%/+30% independently. The\n\
         qualitative conclusions (miss ratio of several-x, barrier growth,\n\
         application rates within ~15%) survive every perturbation; only the\n\
         directly-calibrated absolute values track the constants, as expected.",
        t.render()
    );
    emit("Latency-model sensitivity analysis", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_robust_to_30_percent_perturbations() {
        let base = measure(LatencyModel::spp1000());
        for factor in [0.7f64, 1.3] {
            for (name, lat) in scaled(factor) {
                let o = measure(lat);
                // Global misses stay much costlier than local.
                assert!(
                    o.miss_ratio > 4.0,
                    "{name} x{factor}: ratio {}",
                    o.miss_ratio
                );
                // The application rate moves by far less than the
                // constant did.
                let rel = (o.pic8_mflops / base.pic8_mflops - 1.0).abs();
                assert!(rel < 0.2, "{name} x{factor}: PIC moved {:.1}%", rel * 100.0);
            }
        }
    }
}
