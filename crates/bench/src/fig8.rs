//! Figure 8 — N-body tree-code speedup for three problem sizes in two
//! processor configurations (1-8 on one hypernode; 2-16 across two),
//! relative to the 27.5 Mflop/s single-processor rate.

use crate::{emit, f, Opts, Table};
use nbody::pvm::PvmNbody;
use nbody::{NbodyProblem, SharedNbody};
use spp_core::CpuId;
use spp_pvm::Pvm;
use spp_runtime::{Placement, Runtime, Team};

/// One configuration's measurement.
pub struct Point {
    /// Processors.
    pub procs: usize,
    /// True when all threads sit on one hypernode.
    pub single_node: bool,
    /// Sustained Mflop/s.
    pub mflops: f64,
}

/// Measure one problem size across both paper configurations.
pub fn collect(n: usize, steps: usize) -> Vec<Point> {
    let mut out = Vec::new();
    // Configuration 1: 1, 2, 4, 8 processors on a single hypernode.
    for procs in [1usize, 2, 4, 8] {
        out.push(measure(n, procs, &Placement::HighLocality, true, steps));
    }
    // Configuration 2: 2, 4, 8, 16 across two hypernodes.
    for procs in [2usize, 4, 8, 16] {
        out.push(measure(n, procs, &Placement::Uniform, false, steps));
    }
    out
}

fn measure(n: usize, procs: usize, placement: &Placement, single: bool, steps: usize) -> Point {
    let mut rt = Runtime::spp1000(2);
    let team = Team::place(rt.machine.config(), procs, placement);
    let mut sim = SharedNbody::new(&mut rt, NbodyProblem::with_n(n), &team);
    sim.step(&mut rt, &team); // warm-up
    let r = sim.run(&mut rt, &team, steps);
    Point {
        procs,
        single_node: single,
        mflops: r.mflops(),
    }
}

/// Regenerate Figure 8.
pub fn run(o: &Opts) -> String {
    // 2M particles at full fidelity takes tens of minutes of host time
    // on one core; the default harness substitutes 512K (documented —
    // the speedup shape is size-monotone), `--full` runs the paper
    // size.
    let big = if o.full { 2 * 1024 * 1024 } else { 512 * 1024 };
    let sizes = [
        (32 * 1024, "32K".to_string()),
        (256 * 1024, "256K".to_string()),
        (
            big,
            if o.full {
                "2M".into()
            } else {
                "512K (scaled 2M)".to_string()
            },
        ),
    ];
    let mut out = String::new();
    // The paper's §5.3.2 PVM paragraph, quantified at the small size.
    let pvm_note = {
        let n = 32 * 1024;
        let cpus: Vec<CpuId> = (0..8u16).map(CpuId).collect();
        let mut pvm = Pvm::spp1000(2, &cpus);
        let mut sim = PvmNbody::new(&mut pvm, NbodyProblem::with_n(n));
        sim.step(&mut pvm);
        let rp = sim.run(&mut pvm, o.steps);
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
        let mut sh = SharedNbody::new(&mut rt, NbodyProblem::with_n(n), &team);
        sh.step(&mut rt, &team);
        let rs = sh.run(&mut rt, &team, o.steps);
        format!(
            "PVM (replicated data) at 8 tasks, 32K: {:.2}x the shared-memory time
             (paper: \"the overheads of packing and sending messages ... are
             prohibitive and overall performance is degraded\").",
            rp.elapsed as f64 / rs.elapsed as f64
        )
    };
    for (n, name) in &sizes {
        let pts = collect(*n, o.steps);
        let base = pts[0].mflops; // 1 processor, single node
        let mut t = Table::new(&["procs", "config", "MF/s", "speedup"]);
        for p in &pts {
            t.row(vec![
                p.procs.to_string(),
                if p.single_node { "1 node" } else { "2 nodes" }.to_string(),
                f(p.mflops, 1),
                f(p.mflops / base, 2),
            ]);
        }
        let cross = cross_node_degradation(&pts)
            .map_or_else(|| "n/a".to_string(), |c| format!("{:.1}%", c * 100.0));
        out.push_str(&emit(
            &format!("Figure 8: N-body speedup, {name} particles"),
            &format!(
                "{}\n1-processor rate: {:.1} MF/s (paper: 27.5); cross-hypernode\n\
                 degradation at 8 procs: {cross} (paper: 2-7%).\n\
                 paper anchor: 384 Mflop/s at 16 processors vs 120 Mflop/s for the\n\
                 vectorized C90 tree code (modelled C90: {:.0} MF/s).",
                t.render(),
                base,
                nbody::c90::run_c90(&NbodyProblem::with_n((*n).min(32 * 1024))).mflops,
            ),
        ));
    }
    out.push_str(&emit(
        "Figure 8 (cont.): message-passing version",
        &pvm_note,
    ));
    out
}

/// Relative slowdown of 8 procs on two nodes vs. 8 on one, or `None`
/// if either configuration is absent from the points.
pub fn cross_node_degradation(pts: &[Point]) -> Option<f64> {
    let single = pts
        .iter()
        .find(|p| p.procs == 8 && p.single_node)
        .map(|p| p.mflops)?;
    let dual = pts
        .iter()
        .find(|p| p.procs == 8 && !p.single_node)
        .map(|p| p.mflops)?;
    Some(single / dual - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_shape_scaled() {
        let pts = collect(8192, 1);
        let base = pts[0].mflops;
        // Excellent scaling across one hypernode (paper: "in all
        // cases").
        let p8 = pts.iter().find(|p| p.procs == 8 && p.single_node).unwrap();
        assert!(
            p8.mflops / base > 6.0,
            "8-proc speedup {}",
            p8.mflops / base
        );
        // Small cross-node degradation.
        let d = cross_node_degradation(&pts).expect("both 8-proc configurations measured");
        assert!((-0.05..=0.3).contains(&d), "degradation {d}");
        // 16 processors beat 8.
        let p16 = pts.iter().find(|p| p.procs == 16).unwrap();
        assert!(p16.mflops > p8.mflops);
    }

    #[test]
    fn missing_configurations_yield_none_not_a_panic() {
        let only_single = vec![Point {
            procs: 8,
            single_node: true,
            mflops: 100.0,
        }];
        assert_eq!(cross_node_degradation(&only_single), None);
        assert_eq!(cross_node_degradation(&[]), None);
    }
}
