//! Figure 7 — FEM performance on the small and large data sets, in
//! two codings, against the C90 line (0.57 point updates/µs).

use crate::{emit, f, Opts, Table};
use fem::{Coding, Mesh, SharedFem};
use spp_runtime::{Placement, Runtime, Team};

/// Processor counts (9 and 12 included to expose the non-monotonic
/// region the paper flags between 8 and 9 processors).
pub const PROCS: [usize; 7] = [1, 2, 4, 8, 9, 12, 16];

/// One measured configuration: (procs, point updates/µs).
pub fn collect(mesh: fn() -> Mesh, coding: Coding, steps: usize) -> Vec<(usize, f64)> {
    PROCS
        .iter()
        .map(|&procs| {
            let mut rt = Runtime::spp1000(2);
            let team = Team::place(rt.machine.config(), procs, &Placement::HighLocality);
            let mut sim = SharedFem::new(&mut rt, mesh(), coding, &team);
            sim.step(&mut rt, &team, 0.3); // warm-up
            let r = sim.run(&mut rt, &team, 0.3, steps);
            (procs, r.updates_per_us())
        })
        .collect()
}

/// Regenerate Figure 7.
pub fn run(o: &Opts) -> String {
    let small1 = collect(Mesh::small, Coding::ScatterAdd, o.steps);
    let small2 = collect(Mesh::small, Coding::Gather, o.steps);
    let large = collect(Mesh::large, Coding::ScatterAdd, o.steps);
    let c90 = fem::c90::run_c90(&Mesh::small());
    let mut t = Table::new(&["procs", "small1 pu/us", "small2 pu/us", "large pu/us"]);
    for i in 0..PROCS.len() {
        t.row(vec![
            PROCS[i].to_string(),
            f(small1[i].1, 3),
            f(small2[i].1, 3),
            f(large[i].1, 3),
        ]);
    }
    let body = format!(
        "{}\nC90 reference line: {:.2} point updates/us (paper: 0.57; ~250 useful Mflop/s)\n\
         paper anchors: serial rate 0.072 pu/us (-O2) / 0.042 (-O3 parallelizing\n\
         compiler); non-monotonic scaling between 8 and 9 processors; small data\n\
         set ~ aggregate cache size outperforms large per processor.",
        t.render(),
        c90.updates_per_us
    );
    emit("Figure 7: FEM scaling (small1 / small2 / large)", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> Mesh {
        fem::structured(48, 48)
    }

    #[test]
    fn fig7_shape() {
        let pts = collect(mini, Coding::ScatterAdd, 1);
        let rate = |n: usize| pts.iter().find(|p| p.0 == n).unwrap().1;
        // Good scaling to 8.
        assert!(
            rate(8) / rate(1) > 5.0,
            "8-proc scaling {}",
            rate(8) / rate(1)
        );
        // The paper's non-monotonic dip between 8 and 9 processors.
        assert!(
            rate(9) < rate(8),
            "9-proc dip absent: {} vs {}",
            rate(9),
            rate(8)
        );
        // Recovered by 16.
        assert!(rate(16) > rate(9));
    }

    #[test]
    fn codings_scale_differently_but_both_scale() {
        let a = collect(mini, Coding::ScatterAdd, 1);
        let b = collect(mini, Coding::Gather, 1);
        assert!(a[3].1 / a[0].1 > 4.0);
        assert!(b[3].1 / b[0].1 > 4.0);
        // Distinct codings produce distinct rates.
        assert!((a[0].1 - b[0].1).abs() > 1e-6);
    }
}
