//! Glue between the experiment harness and the scenario engine.
//!
//! [`registry`] exposes every legacy experiment to `spp-scenario`'s
//! fleet runner, so a TOML spec with `kind = "experiment"` dispatches
//! to exactly the same `run(&Opts)` function the old `repro-*`
//! binaries called — ported specs are bit-identical to the binaries
//! by construction. [`run_single`] is what those binaries now are: a
//! one-cell supervised fleet. [`fleet_main`] is the `spp-scenario`
//! binary: validate and run whole spec matrices.

use crate::{Backend, Opts};
use spp_scenario::{run_fleet, ExperimentOpts, FleetConfig, Registry, ScenarioKind, ScenarioSpec};
use std::path::{Path, PathBuf};

fn opts_from(e: &ExperimentOpts) -> Opts {
    Opts {
        full: e.full,
        steps: e.steps,
        backend: match e.backend.as_str() {
            "fast" => Backend::Fast,
            _ => Backend::Cycle,
        },
    }
}

macro_rules! experiment_adapters {
    ($(($id:literal, $adapter:ident, $runner:path)),* $(,)?) => {
        $(
            fn $adapter(e: &ExperimentOpts) -> String {
                $runner(&opts_from(e))
            }
        )*

        /// Every legacy experiment, registered under its `repro-*`
        /// name, in the canonical `repro-all` order.
        pub fn registry() -> Registry {
            let mut r = Registry::new();
            $( r.register($id, $adapter); )*
            r
        }
    };
}

experiment_adapters!(
    ("latency", adapt_latency, crate::latency::run),
    ("fig2", adapt_fig2, crate::fig2::run),
    ("fig3", adapt_fig3, crate::fig3::run),
    ("fig4", adapt_fig4, crate::fig4::run),
    ("table1", adapt_table1, crate::table1::run),
    ("table2", adapt_table2, crate::table2::run),
    ("fig7", adapt_fig7, crate::fig7::run),
    ("fig6", adapt_fig6, crate::fig6::run),
    ("fig8", adapt_fig8, crate::fig8::run),
    ("scale", adapt_scale, crate::scale::run),
    ("cache", adapt_cache, crate::cachestudy::run),
    ("sensitivity", adapt_sensitivity, crate::sensitivity::run),
    ("bus", adapt_bus, crate::bus::run),
    ("faults", adapt_faults, crate::faults::run),
    ("chaos", adapt_chaos, crate::chaos::run),
    ("backend", adapt_backend, crate::backend::run),
    ("trace", adapt_trace, crate::trace::run),
    ("race", adapt_race, crate::race::run),
    ("protocol", adapt_protocol, crate::protocol::run),
    ("recovery", adapt_recovery, crate::recovery::run),
    ("insight", adapt_insight, crate::insight::run),
);

/// Entry point of every `repro-*` binary: run one experiment as a
/// one-cell supervised fleet. Parses the historical
/// `[--full] [--steps N] [--backend cycle|fast]` command line, so the
/// binaries keep their interface while the engine supplies crash
/// containment and reporting. Returns the process exit code.
pub fn run_single(id: &str) -> i32 {
    let opts = Opts::from_args();
    let mut spec = ScenarioSpec::experiment(&format!("repro-{id}"), id);
    if let ScenarioKind::Experiment(ref mut e) = spec.kind {
        e.full = opts.full;
        e.steps = opts.steps;
        e.backend = opts.backend.name().to_string();
    }
    let report = run_fleet(
        &[spec],
        &registry(),
        &FleetConfig {
            workers: 1,
            ..FleetConfig::default()
        },
    );
    print!("{}", report.render());
    i32::from(!report.all_as_expected())
}

/// Collect spec files from path arguments: a `.toml` file is taken
/// as-is, a directory contributes its immediate `*.toml` children in
/// sorted order (deterministic fleet order).
pub fn collect_spec_paths(args: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut paths = Vec::new();
    for a in args {
        let p = Path::new(a);
        if p.is_dir() {
            let mut children: Vec<PathBuf> = std::fs::read_dir(p)
                .map_err(|e| format!("{a}: {e}"))?
                .filter_map(|entry| entry.ok().map(|d| d.path()))
                .filter(|c| c.extension().is_some_and(|x| x == "toml"))
                .collect();
            children.sort();
            if children.is_empty() {
                return Err(format!("{a}: no .toml specs in directory"));
            }
            paths.extend(children);
        } else if p.is_file() {
            paths.push(p.to_path_buf());
        } else {
            return Err(format!("{a}: no such file or directory"));
        }
    }
    if paths.is_empty() {
        return Err("no scenario specs given".to_string());
    }
    Ok(paths)
}

/// Load every spec, collecting **all** failures — unreadable files,
/// parse/validation errors, duplicate names — instead of stopping at
/// the first, so one `validate` pass reports every broken spec in a
/// directory. Valid specs come back in path order alongside the
/// per-path error messages.
pub fn load_specs_collecting(paths: &[PathBuf]) -> (Vec<ScenarioSpec>, Vec<String>) {
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    let mut errors = Vec::new();
    for p in paths {
        let text = match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                errors.push(format!("{}: {e}", p.display()));
                continue;
            }
        };
        match ScenarioSpec::from_toml_str(&text) {
            Ok(spec) => {
                if specs.iter().any(|s| s.name == spec.name) {
                    errors.push(format!(
                        "{}: duplicate scenario name {:?}",
                        p.display(),
                        spec.name
                    ));
                } else {
                    specs.push(spec);
                }
            }
            Err(e) => errors.push(format!("{}: {e}", p.display())),
        }
    }
    (specs, errors)
}

/// Load and validate every spec, rejecting duplicate names (the
/// report and quarantine key). Fail-fast face of
/// [`load_specs_collecting`]: the first collected error, if any.
pub fn load_specs(paths: &[PathBuf]) -> Result<Vec<ScenarioSpec>, String> {
    let (specs, errors) = load_specs_collecting(paths);
    match errors.into_iter().next() {
        None => Ok(specs),
        Some(e) => Err(e),
    }
}

const FLEET_USAGE: &str = "usage: spp-scenario <command> [options] <spec.toml|dir>...\n\
     \x20 validate             parse + validate specs, print the matrix, run nothing\n\
     \x20 run                  execute the matrix under the supervised fleet\n\
     \x20   --workers N        host worker threads (default 4)\n\
     \x20   --max-timeout S    cap every spec's timeout at S seconds\n\
     \x20 reports land under target/repro (override with SPP_REPRO_DIR):\n\
     \x20 BENCH_scenarios.json + scenarios_summary.txt, always written,\n\
     \x20 even when cells panic, hang, or diverge";

/// The `spp-scenario` binary: `validate` or `run` a spec matrix.
/// Returns the process exit code — for `run`, zero iff every cell's
/// outcome matched its spec's declared `expect`.
pub fn fleet_main(args: &[String]) -> i32 {
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{FLEET_USAGE}");
        return 2;
    };

    let mut workers = 4usize;
    let mut max_timeout: Option<f64> = None;
    let mut paths_args: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => {
                    eprintln!("error: --workers needs a positive integer\n{FLEET_USAGE}");
                    return 2;
                }
            },
            "--max-timeout" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) if s > 0.0 => max_timeout = Some(s),
                _ => {
                    eprintln!("error: --max-timeout needs a positive number\n{FLEET_USAGE}");
                    return 2;
                }
            },
            other => paths_args.push(other.to_string()),
        }
    }

    let paths = match collect_spec_paths(&paths_args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n{FLEET_USAGE}");
            return 2;
        }
    };

    match cmd.as_str() {
        "validate" => {
            // Collect every broken spec before exiting nonzero, so one
            // pass over a directory reports the whole damage.
            let (specs, errors) = load_specs_collecting(&paths);
            for s in &specs {
                let kind = match &s.kind {
                    ScenarioKind::Experiment(e) => format!("experiment:{}", e.id),
                    ScenarioKind::Workload(w) => format!("workload:{}", w.app.label()),
                    ScenarioKind::Builtin(b) => format!("builtin:{}", b.label()),
                };
                println!(
                    "ok  {:<28} {:<22} expect={}",
                    s.name,
                    kind,
                    s.expect.label()
                );
            }
            for e in &errors {
                eprintln!("err {e}");
            }
            if errors.is_empty() {
                println!("{} specs valid", specs.len());
                0
            } else {
                println!("{} specs valid, {} invalid", specs.len(), errors.len());
                2
            }
        }
        "run" => {
            let specs = match load_specs(&paths) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}\n{FLEET_USAGE}");
                    return 2;
                }
            };
            let dir = crate::repro_dir();
            // Live telemetry: the fleet streams per-cell lifecycle
            // heartbeats as it runs, so `tail -f` shows progress long
            // before the deterministic reports land.
            let cfg = FleetConfig {
                workers,
                checkpoint_dir: Some(dir.join("checkpoints")),
                max_timeout_secs: max_timeout,
                heartbeat_path: Some(dir.join("scenarios_heartbeat.jsonl")),
            };
            let report = run_fleet(&specs, &registry(), &cfg);
            print!("{}", report.render());
            if let Err(e) = std::fs::create_dir_all(&dir)
                .and_then(|()| std::fs::write(dir.join("BENCH_scenarios.json"), report.to_json()))
                .and_then(|()| std::fs::write(dir.join("scenarios_summary.txt"), report.render()))
            {
                eprintln!("[could not write reports under {}: {e}]", dir.display());
            } else {
                println!(
                    "[reports written to {}]",
                    dir.join("BENCH_scenarios.json").display()
                );
            }
            i32::from(!report.all_as_expected())
        }
        other => {
            eprintln!("error: unknown command {other:?}\n{FLEET_USAGE}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("spp-scenario-cli-{tag}"));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn the_registry_covers_every_canonical_experiment_plus_chaos() {
        let reg = registry();
        let mut expected: Vec<&str> = crate::harness::all_experiments()
            .iter()
            .map(|e| e.name)
            .collect();
        expected.push("chaos");
        for name in expected {
            assert!(reg.get(name).is_some(), "{name} missing from the registry");
        }
    }

    #[test]
    fn spec_collection_is_sorted_and_rejects_duplicates() {
        let d = tempdir("collect");
        std::fs::write(
            d.join("b.toml"),
            "schema = 1\n[scenario]\nname = \"b\"\nkind = \"builtin\"\n[builtin]\nop = \"noop\"\n",
        )
        .unwrap();
        std::fs::write(
            d.join("a.toml"),
            "schema = 1\n[scenario]\nname = \"a\"\nkind = \"builtin\"\n[builtin]\nop = \"noop\"\n",
        )
        .unwrap();
        let paths = collect_spec_paths(&[d.to_string_lossy().into_owned()]).unwrap();
        assert!(paths[0].ends_with("a.toml"));
        assert!(paths[1].ends_with("b.toml"));
        let specs = load_specs(&paths).unwrap();
        assert_eq!(specs[0].name, "a");

        std::fs::write(
            d.join("c.toml"),
            "schema = 1\n[scenario]\nname = \"a\"\nkind = \"builtin\"\n[builtin]\nop = \"noop\"\n",
        )
        .unwrap();
        let paths = collect_spec_paths(&[d.to_string_lossy().into_owned()]).unwrap();
        let err = load_specs(&paths).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn validate_collects_every_broken_spec_before_failing() {
        let d = tempdir("collect-all");
        std::fs::write(
            d.join("a-good.toml"),
            "schema = 1\n[scenario]\nname = \"good\"\nkind = \"builtin\"\n[builtin]\nop = \"noop\"\n",
        )
        .unwrap();
        std::fs::write(d.join("b-bad.toml"), "schema = 1\nthis is not toml [").unwrap();
        std::fs::write(
            d.join("c-bad.toml"),
            "schema = 1\n[scenario]\nname = \"x\"\nkind = \"magic\"\n",
        )
        .unwrap();
        let paths = collect_spec_paths(&[d.to_string_lossy().into_owned()]).unwrap();
        let (specs, errors) = load_specs_collecting(&paths);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].name, "good");
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].contains("b-bad.toml"), "{errors:?}");
        assert!(errors[1].contains("c-bad.toml"), "{errors:?}");
        // The fail-fast face surfaces the first of the same errors.
        assert_eq!(load_specs(&paths).unwrap_err(), errors[0]);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_paths_and_empty_dirs_are_errors() {
        assert!(collect_spec_paths(&["/no/such/path".into()]).is_err());
        let d = tempdir("empty");
        assert!(collect_spec_paths(&[d.to_string_lossy().into_owned()])
            .unwrap_err()
            .contains("no .toml"));
        let _ = std::fs::remove_dir_all(&d);
    }
}
