//! Extrapolation to larger configurations — the paper's stated next
//! step ("Among the near term activities to be undertaken is running
//! on larger configuration platforms", §7). The testbed had 2 of the
//! architecture's 16 hypernodes; the simulator runs the full machine.
//!
//! Everything here is *prediction*, not reproduction: it shows what
//! the modelled protocols do as ring transit and SCI list lengths grow
//! toward the 128-processor limit.

use crate::{emit, f, Opts, Table};
use nbody::{NbodyProblem, SharedNbody};
use pic::{PicProblem, SharedPic};
use spp_core::{CpuId, Cycles, Machine, MemClass, NodeId};
use spp_runtime::{Placement, Runtime, RuntimeCostModel, SimBarrier, Team};

/// Hypernode counts swept (procs = 8x).
pub const NODES: [usize; 5] = [1, 2, 4, 8, 16];

/// Remote-miss latency as the rings grow (SCI transit scales with the
/// station count).
pub fn remote_miss_cycles(hypernodes: usize) -> Cycles {
    let mut m = Machine::spp1000(hypernodes.max(2));
    let far = m.alloc(
        MemClass::NearShared {
            node: NodeId((hypernodes - 1) as u8),
        },
        4096,
    );
    m.read(CpuId(0), far.addr(0))
}

/// Full-machine barrier release time (µs).
pub fn barrier_lilo_us(hypernodes: usize) -> f64 {
    let mut m = Machine::spp1000(hypernodes);
    let bar = SimBarrier::new(&mut m, NodeId(0));
    let cost = RuntimeCostModel::spp1000();
    let n = 8 * hypernodes;
    let arrivals: Vec<(CpuId, Cycles)> =
        (0..n as u16).map(|i| (CpuId(i), i as u64 * 100)).collect();
    bar.simulate(&mut m, &cost, &arrivals);
    spp_core::cycles_to_us(bar.simulate(&mut m, &cost, &arrivals).lilo())
}

/// Full-machine empty fork-join (µs).
pub fn fork_join_us(hypernodes: usize) -> f64 {
    let mut rt = Runtime::spp1000(hypernodes);
    let n = 8 * hypernodes;
    rt.fork_join(n, &Placement::Uniform, |_| {});
    rt.fork_join(n, &Placement::Uniform, |_| {}).elapsed_us()
}

/// PIC Mflop/s using every CPU of an `hypernodes`-node machine.
pub fn pic_mflops(hypernodes: usize, steps: usize) -> f64 {
    let mut rt = Runtime::spp1000(hypernodes);
    let team = Team::place(rt.machine.config(), 8 * hypernodes, &Placement::Uniform);
    let mut sim = SharedPic::new(&mut rt, PicProblem::small(), &team);
    sim.step(&mut rt, &team);
    sim.run(&mut rt, &team, steps).mflops()
}

/// N-body Mflop/s using every CPU (256K particles so 128 processors
/// still have ~2K particles each).
pub fn nbody_mflops(hypernodes: usize, steps: usize) -> f64 {
    let mut rt = Runtime::spp1000(hypernodes);
    let team = Team::place(rt.machine.config(), 8 * hypernodes, &Placement::Uniform);
    let mut sim = SharedNbody::new(&mut rt, NbodyProblem::with_n(128 * 1024), &team);
    sim.step(&mut rt, &team);
    sim.run(&mut rt, &team, steps).mflops()
}

/// Run the scale-out prediction.
pub fn run(o: &Opts) -> String {
    let mut t = Table::new(&[
        "hypernodes",
        "procs",
        "remote miss (cy)",
        "barrier lilo (us)",
        "fork-join (us)",
        "PIC MF/s",
        "N-body MF/s",
    ]);
    for &h in &NODES {
        t.row(vec![
            h.to_string(),
            (8 * h).to_string(),
            if h >= 2 {
                remote_miss_cycles(h).to_string()
            } else {
                "-".into()
            },
            f(barrier_lilo_us(h), 1),
            f(fork_join_us(h), 1),
            f(pic_mflops(h, o.steps), 0),
            f(nbody_mflops(h, o.steps), 0),
        ]);
    }
    let body = format!(
        "{}\nPrediction for the full 128-processor SPP-1000 (the paper measured only\n\
         2 hypernodes). Remote misses grow with ring transit; the barrier's SCI\n\
         list walk makes full-machine synchronization increasingly expensive;\n\
         the applications keep scaling but at falling parallel efficiency.",
        t.render()
    );
    emit("Scale-out: 1 to 16 hypernodes (8 to 128 processors)", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_latency_grows_with_ring_length() {
        let r2 = remote_miss_cycles(2);
        let r16 = remote_miss_cycles(16);
        assert!(r16 > r2 + 300, "2 nodes {r2}, 16 nodes {r16}");
    }

    #[test]
    fn barrier_cost_grows_superlinearly_in_nodes() {
        let b2 = barrier_lilo_us(2);
        let b8 = barrier_lilo_us(8);
        // 4x the threads and longer SCI walks: far more than 4x.
        assert!(b8 > 3.0 * b2, "2 nodes {b2}, 8 nodes {b8}");
    }

    #[test]
    fn pic_keeps_scaling_to_64_procs() {
        let m8 = pic_mflops(1, 1);
        let m64 = pic_mflops(8, 1);
        assert!(m64 > 2.5 * m8, "8 procs {m8}, 64 procs {m64}");
    }
}
