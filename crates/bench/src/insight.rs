//! Cycle-attribution campaign (`repro-insight`): every shared-memory
//! application × every coherence protocol with the heatmap mounted,
//! demonstrating
//!
//! * **partition** — per-line attributed cycles and counters sum
//!   bit-exactly to the global clock and [`spp_core::MemStats`]
//!   (`heat_partition_check`) in every cell;
//! * **transparency** — mounting the heatmap (and race detector)
//!   never changes simulated cycles or stats: each cell is re-run
//!   without attribution and compared bit-for-bit;
//! * **attribution** — the hottest line and region per cell, with the
//!   dominant service level (hit / local / GCB / SCI / cache-to-cache
//!   / uncached) explaining *where* the cycles went — the same
//!   decomposition the paper's CXpa profiles drive (§4).
//!
//! Writes an integers-only, byte-stable `BENCH_insight.json` that
//! ci.sh byte-compares across a double run.

use crate::{emit, Opts, Table};
use fem::{self, Coding, SharedFem};
use nbody::{NbodyProblem, SharedNbody};
use pic::{PicProblem, SharedPic};
use ppm::{PpmProblem, SharedPpm};
use spp_core::{heat_by_region, heat_report, Machine, MemStats, ProtocolKind};
use spp_runtime::{Placement, Runtime, Team};

/// The applications the campaign sweeps (all four of the paper's).
pub const APPS: [&str; 4] = ["pic", "nbody", "fem", "ppm"];

/// Hypernodes per cell (16 CPUs: enough for cross-node SCI traffic
/// without making the 12-cell sweep expensive).
const HYPERNODES: usize = 2;

/// One (application, protocol) cell of the campaign.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Protocol label (`dash-sci`, `mesi`, `dragon`).
    pub protocol: &'static str,
    /// Application label.
    pub app: &'static str,
    /// Elapsed simulated cycles of the measured steps.
    pub cycles: u64,
    /// Machine clock at the end of the run (what attribution
    /// partitions).
    pub clock: u64,
    /// Cycles the heatmap attributed across all lines.
    pub attributed: u64,
    /// Distinct cache lines touched.
    pub touched_lines: usize,
    /// The partition invariant: attributed cycles and counters sum
    /// bit-exactly to the machine totals.
    pub partition_ok: bool,
    /// The identical run without attribution produced bit-identical
    /// cycles and stats.
    pub transparent: bool,
    /// Hottest line (line index, attributed cycles, dominant service
    /// level label).
    pub hottest_line: (u64, u64, &'static str),
    /// Hottest region (name, attributed cycles).
    pub hottest_region: (String, u64),
    /// Lines carrying a false-sharing warning from the race detector.
    pub false_shared: u64,
    /// Final memory-system counters.
    pub stats: MemStats,
}

fn run_app(m: Machine, app: &str, steps: usize) -> (u64, Machine) {
    let mut rt = Runtime::new(m);
    let team = Team::place(rt.machine.config(), 8 * HYPERNODES, &Placement::Uniform);
    let mut cycles = 0u64;
    match app {
        "pic" => {
            let mut sim = SharedPic::new(&mut rt, PicProblem::with_mesh(8, 8, 8), &team);
            sim.step(&mut rt, &team); // warm-up
            for _ in 0..steps {
                cycles += sim.step(&mut rt, &team).elapsed;
            }
        }
        "nbody" => {
            let mut sim = SharedNbody::new(&mut rt, NbodyProblem::with_n(2048), &team);
            sim.step(&mut rt, &team);
            for _ in 0..steps {
                cycles += sim.step(&mut rt, &team).0;
            }
        }
        "fem" => {
            let mut sim =
                SharedFem::new(&mut rt, fem::structured(24, 24), Coding::ScatterAdd, &team);
            sim.step(&mut rt, &team, 0.2);
            for _ in 0..steps {
                cycles += sim.step(&mut rt, &team, 0.2).0;
            }
        }
        "ppm" => {
            let mut sim = SharedPpm::new(&mut rt, PpmProblem::tiny(), &team);
            sim.step(&mut rt, &team);
            for _ in 0..steps {
                cycles += sim.step(&mut rt, &team).0;
            }
        }
        other => panic!("unknown app {other:?}"),
    }
    (cycles, rt.machine)
}

/// Run one cell: the attributed run (heatmap + race detector mounted)
/// plus a plain run for the transparency check.
pub fn run_cell(kind: ProtocolKind, app: &'static str, steps: usize) -> Cell {
    let attributed_machine = Machine::spp1000(HYPERNODES)
        .with_protocol(kind)
        .with_heatmap()
        .with_race_detection();
    let (cycles, m) = run_app(attributed_machine, app, steps);

    let plain = Machine::spp1000(HYPERNODES).with_protocol(kind);
    let (plain_cycles, plain_m) = run_app(plain, app, steps);
    let transparent =
        cycles == plain_cycles && m.clock() == plain_m.clock() && m.stats == plain_m.stats;

    let h = m.heatmap().expect("heatmap mounted");
    let hottest_line = h
        .hottest(1)
        .first()
        .map(|(line, cell)| (*line, cell.total_cycles(), cell.dominant_level().label()))
        .unwrap_or((0, 0, "hit"));
    let regions = heat_by_region(&m);
    let hottest_region = regions
        .first()
        .map(|r| (r.name.clone(), r.cell.total_cycles()))
        .unwrap_or_else(|| ("?".to_string(), 0));
    let false_shared = regions.iter().map(|r| r.false_shared_lines).sum();

    Cell {
        protocol: kind.label(),
        app,
        cycles,
        clock: m.clock(),
        attributed: h.totals().total_cycles(),
        touched_lines: h.touched_lines(),
        partition_ok: m.heat_partition_check(),
        transparent,
        hottest_line,
        hottest_region,
        false_shared,
        stats: m.stats,
    }
}

/// The full campaign: every application × every protocol.
pub fn sweep(o: &Opts) -> Vec<Cell> {
    let mut cells = Vec::new();
    for kind in ProtocolKind::ALL {
        for app in APPS {
            cells.push(run_cell(kind, app, o.steps));
        }
    }
    cells
}

/// True when every cell partitions and is transparent (the `"passed"`
/// JSON field).
pub fn passed(cells: &[Cell]) -> bool {
    cells
        .iter()
        .all(|c| c.partition_ok && c.transparent && c.touched_lines > 0)
}

/// Machine-readable form (the `BENCH_insight.json` ci.sh
/// byte-compares across a double run). Integers, strings, and bools
/// only — no floats, no timestamps — so identical inputs serialize
/// identically.
pub fn to_json(cells: &[Cell], steps: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"schema_version\": {},\n  \"experiment\": \"insight\",\n",
        crate::BENCH_SCHEMA_VERSION
    ));
    out.push_str(&format!(
        "  \"steps\": {},\n  \"passed\": {},\n  \"cells\": [\n",
        steps,
        passed(cells)
    ));
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"protocol\": \"{}\", \"app\": \"{}\", \"cycles\": {}, \
             \"clock\": {}, \"attributed_cycles\": {}, \"touched_lines\": {}, \
             \"heat_partition_check\": {}, \"attribution_transparent\": {}, \
             \"hottest_line\": {}, \"hottest_line_cycles\": {}, \
             \"hottest_line_level\": \"{}\", \"hottest_region\": \"{}\", \
             \"hottest_region_cycles\": {}, \"false_shared_lines\": {}, \
             \"sci_fetches\": {}, \"c2c_transfers\": {}, \"upgrades\": {}}}{comma}\n",
            c.protocol,
            c.app,
            c.cycles,
            c.clock,
            c.attributed,
            c.touched_lines,
            c.partition_ok,
            c.transparent,
            c.hottest_line.0,
            c.hottest_line.1,
            c.hottest_line.2,
            c.hottest_region.0,
            c.hottest_region.1,
            c.false_shared,
            c.stats.sci_fetches,
            c.stats.c2c_transfers,
            c.stats.upgrades,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `BENCH_insight.json` under `dir` (created if needed).
/// Returns the JSON path.
pub fn write_report(
    cells: &[Cell],
    steps: usize,
    dir: &std::path::Path,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let json = dir.join("BENCH_insight.json");
    std::fs::write(&json, to_json(cells, steps))?;
    Ok(json)
}

/// Render the campaign table plus one full heat report as a worked
/// example.
pub fn report(cells: &[Cell]) -> String {
    let mut out = String::new();
    let mut t = Table::new(&[
        "app",
        "protocol",
        "cycles",
        "attributed",
        "lines",
        "partition",
        "transparent",
        "hottest region",
        "level",
    ]);
    for c in cells {
        t.row(vec![
            c.app.to_string(),
            c.protocol.to_string(),
            c.cycles.to_string(),
            c.attributed.to_string(),
            c.touched_lines.to_string(),
            if c.partition_ok { "ok" } else { "VIOLATED" }.to_string(),
            if c.transparent { "yes" } else { "NO" }.to_string(),
            c.hottest_region.0.clone(),
            c.hottest_line.2.to_string(),
        ]);
    }
    out.push_str(&emit(
        "repro-insight: cycle attribution, all apps x all protocols",
        &format!(
            "{}\nEvery cell's heatmap cycles sum bit-exactly to its machine\n\
             totals (heat_partition_check), and attribution never changes\n\
             the simulation: the same cell without the heatmap is\n\
             bit-identical. The dominant service level of the hottest line\n\
             is the paper's latency story told per cache line.",
            t.render()
        ),
    ));
    out
}

/// Regenerate the attribution campaign. Writes `BENCH_insight.json`
/// under `target/repro` (override with `SPP_REPRO_DIR`), then panics
/// if any invariant failed so the harness records a FAIL.
pub fn run(o: &Opts) -> String {
    let cells = sweep(o);
    let mut text = report(&cells);

    // A worked example of the full per-line report on the PIC cell.
    let m = {
        let machine = Machine::spp1000(HYPERNODES)
            .with_protocol(ProtocolKind::DashSci)
            .with_heatmap()
            .with_race_detection();
        run_app(machine, "pic", o.steps).1
    };
    text.push_str(&emit(
        "repro-insight: heat report (PIC, dash-sci)",
        heat_report(&m, 5).trim_end(),
    ));

    match write_report(&cells, o.steps, &crate::repro_dir()) {
        Ok(json) => text.push_str(&format!("[report written to {}]\n", json.display())),
        Err(e) => text.push_str(&format!("[could not write report: {e}]\n")),
    }
    assert!(passed(&cells), "insight attribution invariants failed");
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_cell_partitions_and_is_transparent() {
        for kind in ProtocolKind::ALL {
            let c = run_cell(kind, "pic", 1);
            assert!(c.partition_ok, "{} partition violated", c.protocol);
            assert!(
                c.transparent,
                "{} attribution perturbed the run",
                c.protocol
            );
            assert!(c.touched_lines > 0);
            assert!(c.attributed > 0);
            assert!(c.attributed <= c.clock);
        }
    }

    #[test]
    fn hottest_region_carries_an_application_label() {
        let c = run_cell(ProtocolKind::DashSci, "nbody", 1);
        // nbody labels its arrays at alloc time; the hottest region
        // must resolve to one of them, never the "?" fallback.
        assert_ne!(c.hottest_region.0, "?", "{:?}", c.hottest_region);
        assert!(c.hottest_region.1 > 0);
    }

    #[test]
    fn json_is_byte_stable_and_integers_only() {
        let cells = vec![
            run_cell(ProtocolKind::DashSci, "fem", 1),
            run_cell(ProtocolKind::Mesi, "fem", 1),
        ];
        let a = to_json(&cells, 1);
        let again = vec![
            run_cell(ProtocolKind::DashSci, "fem", 1),
            run_cell(ProtocolKind::Mesi, "fem", 1),
        ];
        let b = to_json(&again, 1);
        assert_eq!(a, b);
        assert!(a.contains("\"heat_partition_check\": true"), "{a}");
        assert!(a.contains("\"attribution_transparent\": true"), "{a}");
        assert!(!a.contains('.'), "floats leaked into the report: {a}");
    }

    #[test]
    fn report_lands_on_disk() {
        let cells = vec![run_cell(ProtocolKind::Dragon, "ppm", 1)];
        let dir = std::env::temp_dir().join("spp-insight-report-test");
        let json = write_report(&cells, 1, &dir).unwrap();
        assert!(json.ends_with("BENCH_insight.json"));
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"experiment\": \"insight\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
