//! Figure 6 — PIC time-to-solution and speedup: shared-memory vs. PVM
//! versions on 1-16 processors, against the C90 reference line.

use crate::{emit, f, Opts, Table};
use pic::pvm::PvmPic;
use pic::{PicProblem, SharedPic};
use spp_core::CpuId;
use spp_pvm::Pvm;
use spp_runtime::{Placement, Runtime, Team};

/// Processor counts of the sweep.
pub const PROCS: [usize; 5] = [1, 2, 4, 8, 16];

/// One measured configuration.
pub struct Point {
    /// Processors.
    pub procs: usize,
    /// Simulated seconds per timestep.
    pub secs_per_step: f64,
    /// Sustained Mflop/s.
    pub mflops: f64,
}

/// Run the shared-memory version for one problem across [`PROCS`].
pub fn collect_shared(p: &PicProblem, steps: usize) -> Vec<Point> {
    PROCS
        .iter()
        .map(|&procs| {
            let mut rt = Runtime::spp1000(2);
            let team = Team::place(rt.machine.config(), procs, &Placement::HighLocality);
            let mut sim = SharedPic::new(&mut rt, p.clone(), &team);
            sim.step(&mut rt, &team); // warm-up
            let r = sim.run(&mut rt, &team, steps);
            Point {
                procs,
                secs_per_step: r.seconds() / steps as f64,
                mflops: r.mflops(),
            }
        })
        .collect()
}

/// Run the PVM version for one problem across [`PROCS`].
pub fn collect_pvm(p: &PicProblem, steps: usize) -> Vec<Point> {
    PROCS
        .iter()
        .map(|&procs| {
            let cpus: Vec<CpuId> = (0..procs as u16).map(CpuId).collect();
            let mut pvm = Pvm::spp1000(2, &cpus);
            let mut sim = PvmPic::new(&mut pvm, p.clone());
            sim.step(&mut pvm); // warm-up
            let r = sim.run(&mut pvm, steps);
            Point {
                procs,
                secs_per_step: r.seconds() / steps as f64,
                mflops: r.mflops(),
            }
        })
        .collect()
}

/// Regenerate Figure 6.
pub fn run(o: &Opts) -> String {
    let mut out = String::new();
    for (prob, name, c90_total) in [
        (PicProblem::small(), "32x32x32 (294912 particles)", 112.9),
        (PicProblem::large(), "64x64x32 (1179648 particles)", 436.4),
    ] {
        let shared = collect_shared(&prob, o.steps);
        let pvm = collect_pvm(&prob, o.steps);
        let c90 = pic::c90::run_c90(&prob, 500);
        let base = shared[0].secs_per_step;
        let mut t = Table::new(&[
            "procs",
            "shared s/500steps",
            "speedup",
            "MF/s",
            "pvm s/500steps",
            "pvm/shared",
        ]);
        for (s, v) in shared.iter().zip(&pvm) {
            t.row(vec![
                s.procs.to_string(),
                f(s.secs_per_step * 500.0, 1),
                f(base / s.secs_per_step, 2),
                f(s.mflops, 0),
                f(v.secs_per_step * 500.0, 1),
                f(v.secs_per_step / s.secs_per_step, 2),
            ]);
        }
        out.push_str(&emit(
            &format!("Figure 6: PIC {name}"),
            &format!(
                "{}\nC90 reference line: {:.1} s per 500 steps (modelled; paper measured {c90_total} s)\n\
                 paper anchors: shared memory consistently beats PVM (PVM ~ half the\n\
                 performance); one hypernode (8 procs) approaches the C90.",
                t.render(),
                c90.seconds_per_step * 500.0,
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_small_problem() {
        // A scaled-down mesh keeps the test quick while preserving the
        // qualitative shape.
        let p = PicProblem::with_mesh(16, 16, 16);
        let shared = collect_shared(&p, 1);
        let pvm = collect_pvm(&p, 1);
        // Shared memory speeds up through 16 processors.
        assert!(shared[4].secs_per_step < shared[0].secs_per_step / 6.0);
        // PVM is slower than shared at scale (replicated-grid costs).
        let s8 = &shared[3];
        let v8 = &pvm[3];
        assert!(
            v8.secs_per_step > s8.secs_per_step,
            "pvm {} vs shared {}",
            v8.secs_per_step,
            s8.secs_per_step
        );
    }
}
