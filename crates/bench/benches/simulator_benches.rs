//! Benches of the simulator core itself (access pricing, coherence
//! machinery) plus the DESIGN.md ablations, which compare *simulated*
//! costs under design variations and print the ratios.

use criterion::{criterion_group, criterion_main, Criterion};
use spp_core::{CpuId, LatencyModel, Machine, MachineConfig, MemClass, NodeId};
use spp_runtime::{Placement, Runtime, Team};

fn bench_access_hit(c: &mut Criterion) {
    c.bench_function("machine_read_hit", |b| {
        let mut m = Machine::spp1000(2);
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        m.read(CpuId(0), r.addr(0));
        b.iter(|| m.read(CpuId(0), r.addr(0)))
    });
}

fn bench_access_stream(c: &mut Criterion) {
    c.bench_function("machine_read_stream_1mb", |b| {
        let mut m = Machine::spp1000(2);
        let r = m.alloc(MemClass::FarShared, 1 << 20);
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..(1 << 20) / 64 {
                total += m.read(CpuId(0), r.addr(i * 64));
            }
            total
        })
    });
}

fn bench_write_invalidate(c: &mut Criterion) {
    c.bench_function("machine_write_invalidate_8_sharers", |b| {
        let mut m = Machine::spp1000(2);
        let r = m.alloc(MemClass::NearShared { node: NodeId(0) }, 4096);
        b.iter(|| {
            for cpu in 0..8u16 {
                m.read(CpuId(cpu), r.addr(0));
            }
            m.write(CpuId(0), r.addr(0))
        })
    });
}

/// Ablation: SCI linked-list coherence vs. an idealized UMA machine —
/// what does the global protocol cost a cross-node barrier?
fn ablation_sci(c: &mut Criterion) {
    use spp_core::Cycles;
    use spp_runtime::{RuntimeCostModel, SimBarrier};
    let run = |lat: LatencyModel| -> Cycles {
        let mut cfg = MachineConfig::spp1000(2);
        cfg.latency = lat;
        let mut m = Machine::new(cfg);
        let bar = SimBarrier::new(&mut m, NodeId(0));
        let cost = RuntimeCostModel::spp1000();
        let arrivals: Vec<(CpuId, Cycles)> =
            (0..16u16).map(|i| (CpuId(i), i as u64 * 100)).collect();
        bar.simulate(&mut m, &cost, &arrivals);
        bar.simulate(&mut m, &cost, &arrivals).lilo()
    };
    let sci = run(LatencyModel::spp1000());
    let uma = run(LatencyModel::uma_ideal());
    println!(
        "[ablation_sci] 16-thread barrier release: SCI {} cy vs idealized UMA {} cy ({:.2}x)",
        sci,
        uma,
        sci as f64 / uma as f64
    );
    c.bench_function("ablation_sci_barrier", |b| {
        b.iter(|| run(LatencyModel::spp1000()))
    });
}

/// Ablation: Morton ordering of the FEM mesh vs. raw mesh-generator
/// order (a random permutation). Row-major structured order is itself
/// cache-friendly, so the generator order is the honest baseline; the
/// mesh must also exceed the 1 MB cache for ordering to matter.
fn ablation_morton(c: &mut Criterion) {
    let run = |mesh: fem::Mesh| {
        let mut rt = Runtime::spp1000(1);
        let team = Team::place(rt.machine.config(), 1, &Placement::HighLocality);
        let mut sim = fem::SharedFem::new(&mut rt, mesh, fem::Coding::ScatterAdd, &team);
        sim.step(&mut rt, &team, 0.3);
        sim.step(&mut rt, &team, 0.3).0
    };
    let ordered = run(fem::structured(320, 144)); // the paper's small mesh
    let shuffled = run(fem::mesh::structured_shuffled(320, 144, 42)); // generator order
    println!(
        "[ablation_morton] FEM step: Morton {} cy vs generator-order {} cy ({:.2}x gain)",
        ordered,
        shuffled,
        shuffled as f64 / ordered as f64
    );
    c.bench_function("ablation_morton_fem", |b| {
        b.iter(|| run(fem::structured(48, 48)))
    });
}

/// Ablation: memory-class placement, seen from a one-hypernode team
/// (the case where placement control matters most — a symmetric
/// 16-CPU sweep pays the same total either way).
fn ablation_memclass(c: &mut Criterion) {
    let run = |class: MemClass| {
        let mut m = Machine::spp1000(2);
        let bytes = 1u64 << 20;
        let r = m.alloc(class, bytes);
        let mut total = 0u64;
        for cpu in 0..8u16 {
            // node 0 only
            for i in 0..bytes / 256 {
                total += m.read(CpuId(cpu), r.addr(i * 256));
            }
        }
        total
    };
    let near = run(MemClass::NearShared { node: NodeId(0) });
    let far = run(MemClass::FarShared);
    println!(
        "[ablation_memclass] 8-cpu (one node) sweep: near-shared {} cy vs far-shared {} cy ({:.2}x)",
        near,
        far,
        far as f64 / near as f64
    );
    c.bench_function("ablation_memclass_sweep", |b| {
        b.iter(|| run(MemClass::FarShared))
    });
}

/// Ablation: the paper's thread-private-scalars tip — false sharing of
/// per-thread counters packed in shared lines vs. spread to private
/// lines. Updates are interleaved across regions so the line actually
/// ping-pongs (within one replayed region a thread's repeats all hit).
fn ablation_private(c: &mut Criterion) {
    use spp_core::SimArray;
    let run = |private: bool| {
        let mut rt = Runtime::spp1000(1);
        let stride = if private { 4 } else { 1 }; // 4 f64 = one line
        let mut arr = SimArray::<f64>::from_elem(
            &mut rt.machine,
            MemClass::NearShared { node: NodeId(0) },
            8 * stride,
            0.0,
        );
        let mut busy = 0u64;
        for _ in 0..50 {
            let rep = rt.fork_join(8, &Placement::HighLocality, |ctx| {
                let slot = ctx.tid * stride;
                for _ in 0..4 {
                    ctx.update(&mut arr, slot, |v| v + 1.0);
                }
            });
            busy += rep.busy.iter().sum::<u64>();
        }
        busy
    };
    let shared_line = run(false);
    let private_lines = run(true);
    println!(
        "[ablation_private] 8 threads x 200 interleaved increments: packed lines {} cy vs private lines {} cy ({:.2}x)",
        shared_line,
        private_lines,
        shared_line as f64 / private_lines as f64
    );
    c.bench_function("ablation_private_scalars", |b| b.iter(|| run(false)));
}

/// Ablation: 1995 replicated-grid PVM vs. modern slab decomposition.
fn ablation_pvm_decomposition(c: &mut Criterion) {
    use spp_pvm::Pvm;
    let cpus: Vec<CpuId> = (0..8u16).map(CpuId).collect();
    let prob = pic::PicProblem::with_mesh(16, 16, 16);
    let mut pvm_r = Pvm::spp1000(2, &cpus);
    let mut rep = pic::pvm::PvmPic::new(&mut pvm_r, prob.clone());
    let r_rep = rep.run(&mut pvm_r, 1);
    let mut pvm_s = Pvm::spp1000(2, &cpus);
    let mut slab = pic::pvm_slab::SlabPvmPic::new(&mut pvm_s, prob.clone());
    let r_slab = slab.run(&mut pvm_s, 1);
    println!(
        "[ablation_pvm_decomposition] PIC step: replicated {} cy vs slab {} cy ({:.2}x saved)",
        r_rep.elapsed,
        r_slab.elapsed,
        r_rep.elapsed as f64 / r_slab.elapsed as f64
    );
    c.bench_function("ablation_pvm_slab_step", |b| {
        b.iter(|| slab.run(&mut pvm_s, 1).elapsed)
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = sim;
    config = config();
    targets = bench_access_hit, bench_access_stream, bench_write_invalidate,
        ablation_sci, ablation_morton, ablation_memclass, ablation_private,
        ablation_pvm_decomposition
}
criterion_main!(sim);
