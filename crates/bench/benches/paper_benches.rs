//! Criterion benches, one per paper table/figure: each measures the
//! host cost of regenerating (a scaled slice of) that artifact, so
//! `cargo bench` tracks the simulator's own performance per
//! experiment. The scientific outputs (simulated times/rates) come
//! from the `repro-*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use spp_core::CpuId;
use spp_pvm::Pvm;
use spp_runtime::{Placement, Runtime, Team};

fn bench_fig2_fork_join(c: &mut Criterion) {
    c.bench_function("fig2_fork_join_16_threads", |b| {
        let mut rt = Runtime::spp1000(2);
        b.iter(|| rt.fork_join(16, &Placement::Uniform, |_| {}).elapsed)
    });
}

fn bench_fig3_barrier(c: &mut Criterion) {
    use spp_core::{Machine, NodeId};
    use spp_runtime::{RuntimeCostModel, SimBarrier};
    c.bench_function("fig3_barrier_16_threads", |b| {
        let mut m = Machine::spp1000(2);
        let bar = SimBarrier::new(&mut m, NodeId(0));
        let cost = RuntimeCostModel::spp1000();
        let arrivals: Vec<(CpuId, u64)> = (0..16u16).map(|i| (CpuId(i), i as u64 * 100)).collect();
        b.iter(|| bar.simulate(&mut m, &cost, &arrivals).lilo())
    });
}

fn bench_fig4_message(c: &mut Criterion) {
    c.bench_function("fig4_roundtrip_8k", |b| {
        let mut pvm = Pvm::spp1000(2, &[CpuId(0), CpuId(8)]);
        b.iter(|| pvm.round_trip(0, 1, 8192, 1))
    });
}

fn bench_table1_c90_pic(c: &mut Criterion) {
    c.bench_function("table1_c90_model", |b| {
        let p = pic::PicProblem::small();
        b.iter(|| pic::c90::run_c90(&p, 500).total_seconds)
    });
}

fn bench_fig6_pic_step(c: &mut Criterion) {
    c.bench_function("fig6_pic_step_16cubed_8procs", |b| {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
        let mut sim = pic::SharedPic::new(&mut rt, pic::PicProblem::with_mesh(16, 16, 16), &team);
        b.iter(|| sim.step(&mut rt, &team).elapsed)
    });
}

fn bench_fig7_fem_step(c: &mut Criterion) {
    c.bench_function("fig7_fem_step_48x48_8procs", |b| {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
        let mut sim = fem::SharedFem::new(
            &mut rt,
            fem::structured(48, 48),
            fem::Coding::ScatterAdd,
            &team,
        );
        b.iter(|| sim.step(&mut rt, &team, 0.3).0)
    });
}

fn bench_fig8_nbody_step(c: &mut Criterion) {
    c.bench_function("fig8_nbody_step_4096_8procs", |b| {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
        let mut sim = nbody::SharedNbody::new(&mut rt, nbody::NbodyProblem::with_n(4096), &team);
        b.iter(|| sim.step(&mut rt, &team).0)
    });
}

fn bench_table2_ppm_step(c: &mut Criterion) {
    c.bench_function("table2_ppm_step_tiny_4procs", |b| {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut sim = ppm::SharedPpm::new(&mut rt, ppm::PpmProblem::tiny(), &team);
        b.iter(|| sim.step(&mut rt, &team).0)
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = paper;
    config = config();
    targets = bench_fig2_fork_join, bench_fig3_barrier, bench_fig4_message,
        bench_table1_c90_pic, bench_fig6_pic_step, bench_fig7_fem_step,
        bench_fig8_nbody_step, bench_table2_ppm_step
}
criterion_main!(paper);
