//! # spp-pvm — ConvexPVM-style message passing on the simulated SPP-1000
//!
//! The paper's §3.1 describes the Convex PVM port: *one* daemon for
//! the whole machine (not one per node), and a shared-memory message
//! buffer space — "a sending process packs data into a shared memory
//! buffer that the receiving process accesses after the send is
//! complete", avoiding daemon interaction and extra copies. §4.3
//! measures the result: round-trip times of ~30 µs within a hypernode
//! and ~70 µs across the SCI interconnect for messages under 8 KB,
//! with substantial page-granular growth beyond 8 KB (Figure 4).
//!
//! This crate models that layer: PVM tasks are simulated processes
//! pinned to CPUs with their own clocks; sends deposit descriptors in
//! per-task inboxes with arrival timestamps; pack/unpack are priced
//! data copies through the machine's shared buffer space.
//!
//! ```
//! use spp_pvm::Pvm;
//! use spp_core::CpuId;
//!
//! let mut pvm = Pvm::spp1000(2, &[CpuId(0), CpuId(8)]);
//! pvm.send(0, 1, 1024, 7);
//! let msg = pvm.recv(1, Some(0), Some(7)).unwrap();
//! assert_eq!(msg.bytes, 1024);
//! ```

#![warn(missing_docs)]

use std::collections::VecDeque;

use spp_core::trace::{record, TraceEvent, NO_CPU, NO_NODE};
use spp_core::{
    us_to_cycles, CpuId, Cycles, Machine, MemClass, MemPort, NodeId, Region, SimError, StallKind,
    Watchdog, WatchdogReport,
};
use spp_runtime::RuntimeCostModel;

/// Software-path cost constants for the PVM layer, in cycles.
///
/// Calibrated so that the Figure-4 round trip (which excludes message
/// *building*, i.e. pack) is ~30 µs intra-hypernode and ~70 µs
/// inter-hypernode below the 8 KB page threshold.
#[derive(Debug, Clone)]
pub struct PvmCostModel {
    /// Sender-side software path of `pvm_send` (buffer descriptor
    /// management, task lookup).
    pub send_sw: Cycles,
    /// Receiver-side software path of `pvm_recv`.
    pub recv_sw: Cycles,
    /// Delivering the message-ready notification within a hypernode.
    pub notify_local: Cycles,
    /// Extra notification cost when sender and receiver sit on
    /// different hypernodes (SCI semaphore traffic + remote wakeup).
    pub notify_remote_extra: Cycles,
    /// Message size above which buffers span multiple pages and
    /// per-page management kicks in.
    pub page_threshold: usize,
    /// Page size for buffer management.
    pub page_bytes: usize,
    /// Per extra page, same hypernode.
    pub page_cost_local: Cycles,
    /// Per extra page, across hypernodes.
    pub page_cost_remote: Cycles,
    /// Copy cost per 32-byte line for pack/unpack (streaming through
    /// the cache into the shared buffer).
    pub copy_per_line: Cycles,
    /// Simulated time a sender waits before retrying a send the fault
    /// plan dropped (the acknowledgment timeout).
    pub retry_timeout: Cycles,
    /// Retries after the first attempt before a send gives up with
    /// [`SimError::MessageTimeout`].
    pub max_retries: u32,
}

impl PvmCostModel {
    /// The calibrated SPP-1000 ConvexPVM model.
    pub fn spp1000() -> Self {
        PvmCostModel {
            send_sw: us_to_cycles(8.0),
            recv_sw: us_to_cycles(5.0),
            notify_local: us_to_cycles(2.0),
            notify_remote_extra: us_to_cycles(20.0),
            page_threshold: 8192,
            page_bytes: 4096,
            page_cost_local: us_to_cycles(10.0),
            page_cost_remote: us_to_cycles(25.0),
            copy_per_line: 55,
            retry_timeout: us_to_cycles(100.0),
            max_retries: 6,
        }
    }

    /// One-way transfer cost of `bytes` between `from` and `to`
    /// hypernodes (descriptor + notification + page management; *not*
    /// pack/unpack).
    pub fn one_way(&self, bytes: usize, same_node: bool) -> Cycles {
        let mut c = self.send_sw + self.notify_local;
        if !same_node {
            c += self.notify_remote_extra;
        }
        if bytes > self.page_threshold {
            let extra_pages = (bytes - self.page_threshold).div_ceil(self.page_bytes) as u64;
            c += extra_pages
                * if same_node {
                    self.page_cost_local
                } else {
                    self.page_cost_remote
                };
        }
        c
    }

    /// Pack or unpack cost for `bytes` (one full copy through the
    /// shared buffer).
    pub fn copy_cost(&self, bytes: usize) -> Cycles {
        (bytes as u64).div_ceil(32) * self.copy_per_line
    }
}

impl Default for PvmCostModel {
    fn default() -> Self {
        Self::spp1000()
    }
}

/// A delivered message descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// Sending task index.
    pub from: usize,
    /// Message length in bytes.
    pub bytes: usize,
    /// User tag.
    pub tag: u32,
    /// Simulated time at which the message became available to the
    /// receiver.
    pub arrival: Cycles,
    /// Per-sender sequence number; receivers use `(from, seq)` to
    /// discard duplicated deliveries under fault injection.
    pub seq: u64,
}

/// Counters for message faults observed by a PVM session (all zero
/// without an active fault plan).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PvmFaultStats {
    /// Sends the fault plan dropped.
    pub drops: u64,
    /// Retries paid (each costs the sender `retry_timeout`).
    pub retries: u64,
    /// Duplicate deliveries the fault plan injected.
    pub dups_injected: u64,
    /// Duplicates the receive path discarded by sequence number.
    pub dups_discarded: u64,
}

#[derive(Debug, Clone)]
struct TaskState {
    cpu: CpuId,
    clock: Cycles,
    flops: u64,
    next_seq: u64,
}

/// The PVM virtual machine: tasks, inboxes, and the single daemon's
/// shared buffer space.
///
/// Generic over the memory backend; defaults to the cycle-accurate
/// [`Machine`] so plain `Pvm` keeps meaning what it always did.
pub struct Pvm<P: MemPort = Machine> {
    /// The underlying machine (shared with any other layer in use).
    pub machine: P,
    /// PVM software-path costs.
    pub cost: PvmCostModel,
    /// Compute cost model (flop pricing matches the threaded runtime).
    pub compute: RuntimeCostModel,
    tasks: Vec<TaskState>,
    inboxes: Vec<VecDeque<Msg>>,
    faults: PvmFaultStats,
    /// The ConvexPVM shared buffer pool (one region per hypernode).
    buffers: Vec<Region>,
}

impl Pvm {
    /// A PVM session on the paper's testbed.
    pub fn spp1000(hypernodes: usize, cpus: &[CpuId]) -> Self {
        Self::new(Machine::spp1000(hypernodes), cpus)
    }
}

impl<P: MemPort> Pvm<P> {
    /// Create a PVM session with one task per entry of `cpus`.
    ///
    /// # Panics
    /// If `cpus` is empty ("PVM needs at least one task") or names a
    /// CPU the machine does not have. Use [`Pvm::try_new`] for the
    /// typed [`SimError`] instead.
    pub fn new(machine: P, cpus: &[CpuId]) -> Self {
        Self::try_new(machine, cpus).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Pvm::new`].
    pub fn try_new(mut machine: P, cpus: &[CpuId]) -> Result<Self, SimError> {
        if cpus.is_empty() {
            return Err(SimError::NoTasks);
        }
        let num_cpus = machine.config().num_cpus();
        if let Some(c) = cpus.iter().find(|c| c.0 as usize >= num_cpus) {
            return Err(SimError::CpuOutOfRange {
                cpu: c.0,
                cpus: num_cpus,
            });
        }
        let nodes = machine.config().hypernodes;
        let buffers = (0..nodes)
            .map(|n| {
                machine.try_alloc(
                    MemClass::NearShared {
                        node: NodeId(n as u8),
                    },
                    1 << 20,
                )
            })
            .collect::<Result<_, _>>()?;
        Ok(Pvm {
            machine,
            cost: PvmCostModel::spp1000(),
            compute: RuntimeCostModel::spp1000(),
            tasks: cpus
                .iter()
                .map(|c| TaskState {
                    cpu: *c,
                    clock: 0,
                    flops: 0,
                    next_seq: 0,
                })
                .collect(),
            inboxes: vec![VecDeque::new(); cpus.len()],
            faults: PvmFaultStats::default(),
            buffers,
        })
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The CPU task `t` is pinned to.
    pub fn task_cpu(&self, t: usize) -> CpuId {
        self.tasks[t].cpu
    }

    /// Task `t`'s simulated clock.
    pub fn clock(&self, t: usize) -> Cycles {
        self.tasks[t].clock
    }

    /// Greatest task clock (the session's elapsed time).
    pub fn elapsed(&self) -> Cycles {
        self.tasks.iter().map(|t| t.clock).max().unwrap_or(0)
    }

    /// Elapsed time in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        spp_core::cycles_to_us(self.elapsed())
    }

    /// Total flops across tasks.
    pub fn total_flops(&self) -> u64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }

    /// Charge `n` flops of compute to task `t`.
    pub fn flops(&mut self, t: usize, n: u64) {
        self.tasks[t].flops += n;
        self.tasks[t].clock += self.compute.flop_cycles(n);
    }

    /// Charge raw cycles to task `t` (non-FP work).
    pub fn advance(&mut self, t: usize, c: Cycles) {
        self.tasks[t].clock += c;
    }

    /// Run machine-priced compute as task `t`: the closure gets a
    /// detached [`spp_runtime::ThreadCtx`] on this machine at the
    /// task's CPU; its clock and flops are charged to the task.
    pub fn compute<R>(
        &mut self,
        t: usize,
        f: impl FnOnce(&mut spp_runtime::ThreadCtx<'_, P>) -> R,
    ) -> R {
        let cpu = self.tasks[t].cpu;
        let mut ctx = spp_runtime::ThreadCtx::detached(&mut self.machine, &self.compute, cpu);
        let r = f(&mut ctx);
        let (clock, flops) = (ctx.clock(), ctx.flop_count());
        self.tasks[t].clock += clock;
        self.tasks[t].flops += flops;
        r
    }

    /// Pack `bytes` into the shared buffer (a priced copy). The paper
    /// excludes this from its Figure-4 round-trip timings; full
    /// applications pay it.
    pub fn pack(&mut self, t: usize, bytes: usize) {
        let c = self.cost.copy_cost(bytes);
        self.tasks[t].clock += c;
    }

    /// Unpack `bytes` from the shared buffer (a priced copy).
    pub fn unpack(&mut self, t: usize, bytes: usize) {
        let c = self.cost.copy_cost(bytes);
        self.tasks[t].clock += c;
    }

    /// Send `bytes` from task `from` to task `to` with `tag`.
    /// Advances the sender's clock by the send path and deposits a
    /// descriptor with its arrival time.
    ///
    /// # Panics
    /// On self-sends, out-of-range task indices, or when the fault
    /// plan drops the send past the retry budget. Use
    /// [`Pvm::try_send`] for the typed [`SimError`] instead.
    pub fn send(&mut self, from: usize, to: usize, bytes: usize, tag: u32) {
        self.try_send(from, to, bytes, tag)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Pvm::send`]. Under an active fault plan a
    /// dropped send is retried after a priced `retry_timeout`; past
    /// `max_retries` it gives up with [`SimError::MessageTimeout`]
    /// (clock charges for the failed attempts stand).
    pub fn try_send(
        &mut self,
        from: usize,
        to: usize,
        bytes: usize,
        tag: u32,
    ) -> Result<(), SimError> {
        let tasks = self.tasks.len();
        for t in [from, to] {
            if t >= tasks {
                return Err(SimError::TaskOutOfRange { task: t, tasks });
            }
        }
        if from == to {
            return Err(SimError::SelfSend { task: from });
        }
        let same_node = self.machine.config().node_of_cpu(self.tasks[from].cpu)
            == self.machine.config().node_of_cpu(self.tasks[to].cpu);
        let c = self.cost.one_way(bytes, same_node);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            self.tasks[from].clock += c;
            let dropped = self.machine.faults_mut().is_some_and(|f| f.drops_message());
            if !dropped {
                break;
            }
            self.faults.drops += 1;
            if attempts > self.cost.max_retries {
                return Err(SimError::MessageTimeout {
                    from,
                    to,
                    tag,
                    attempts,
                });
            }
            self.faults.retries += 1;
            self.tasks[from].clock += self.cost.retry_timeout;
            let retried_at = self.tasks[from].clock;
            self.emit(
                retried_at,
                from,
                TraceEvent::PvmRetry {
                    from: from as u16,
                    to: to as u16,
                    tag,
                },
            );
        }
        let arrival = self.tasks[from].clock;
        let seq = self.tasks[from].next_seq;
        self.tasks[from].next_seq += 1;
        let msg = Msg {
            from,
            bytes,
            tag,
            arrival,
            seq,
        };
        let duplicated = self
            .machine
            .faults_mut()
            .is_some_and(|f| f.duplicates_message());
        self.inboxes[to].push_back(msg.clone());
        if duplicated {
            self.faults.dups_injected += 1;
            self.inboxes[to].push_back(msg);
        }
        self.emit(
            arrival,
            from,
            TraceEvent::PvmSend {
                from: from as u16,
                to: to as u16,
                bytes: bytes as u64,
                tag,
            },
        );
        Ok(())
    }

    /// Blocking receive on task `t`, optionally filtered by sender and
    /// tag (like `pvm_recv(tid, tag)`); returns `None` if no matching
    /// message has been sent. On success the receiver's clock advances
    /// to the arrival time (if it was early) plus the receive path.
    /// Duplicated deliveries injected by the fault plan are discarded
    /// by `(from, seq)` — each discard still pays the receive path.
    pub fn recv(&mut self, t: usize, from: Option<usize>, tag: Option<u32>) -> Option<Msg> {
        let dedup = self
            .machine
            .fault_plan()
            .is_some_and(|f| f.msg_dup_prob > 0.0);
        let pos = self.inboxes[t]
            .iter()
            .position(|m| from.is_none_or(|f| m.from == f) && tag.is_none_or(|g| m.tag == g))?;
        let msg = self.inboxes[t].remove(pos).expect("position valid");
        if dedup {
            // Purge queued twins of the delivered message: a duplicate
            // always carries the same (from, seq) and was enqueued
            // after its original, so it can only sit behind `pos`.
            // Each discard pays the receive software path.
            let key = (msg.from, msg.seq);
            let before = self.inboxes[t].len();
            self.inboxes[t].retain(|m| (m.from, m.seq) != key);
            let purged = (before - self.inboxes[t].len()) as u64;
            self.faults.dups_discarded += purged;
            self.tasks[t].clock += purged * self.cost.recv_sw;
        }
        let task = &mut self.tasks[t];
        task.clock = task.clock.max(msg.arrival) + self.cost.recv_sw;
        let done = task.clock;
        self.emit(
            done,
            t,
            TraceEvent::PvmRecv {
                from: msg.from as u16,
                to: t as u16,
                bytes: msg.bytes as u64,
                tag: msg.tag,
            },
        );
        Some(msg)
    }

    /// Emit one trace record stamped with task `t`'s CPU and
    /// hypernode (no-op unless the backend has a sink mounted).
    fn emit(&mut self, at: Cycles, t: usize, event: TraceEvent) {
        if self.machine.tracing() {
            let cpu = self.tasks[t].cpu;
            let node = self.machine.config().node_of_cpu(cpu);
            self.machine.trace(record(at, cpu.0, node.0, event));
        }
    }

    /// Emit a system-level watchdog event (not attributable to one
    /// CPU: the stall is a property of the whole protocol episode).
    fn emit_watchdog(&mut self, at: Cycles, kind: StallKind) {
        if self.machine.tracing() {
            self.machine
                .trace(record(at, NO_CPU, NO_NODE, TraceEvent::Watchdog { kind }));
        }
    }

    /// Build a receive-stall diagnostic: the receiver's inbox contents
    /// as in-flight `(from, tag, seq)` triples plus every task clock.
    fn receive_trip(
        &self,
        t: usize,
        wd: &Watchdog,
        observed: Cycles,
        detail: String,
    ) -> WatchdogReport {
        wd.trip(StallKind::Receive, observed, detail)
            .with_in_flight(
                self.inboxes[t]
                    .iter()
                    .map(|m| (m.from, m.tag, m.seq))
                    .collect(),
            )
            .with_cpu_clocks(self.tasks.iter().map(|s| (s.cpu.0, s.clock)).collect())
    }

    /// Watched variant of [`Pvm::recv`]: turns a receive that would
    /// deadlock into a structured [`WatchdogReport`].
    ///
    /// In the serial simulation every send that will ever match has
    /// already been issued when a receive runs, so "no matching
    /// message" means the real machine would block forever — that trips
    /// immediately, with the receiver's inbox dumped as in-flight
    /// sequence numbers. A matching message whose arrival lies more
    /// than the watchdog deadline past the receiver's clock trips too
    /// (the receiver would spin past its progress budget).
    pub fn recv_watched(
        &mut self,
        t: usize,
        from: Option<usize>,
        tag: Option<u32>,
        wd: &Watchdog,
    ) -> Result<Msg, WatchdogReport> {
        let now = self.tasks[t].clock;
        let arrival = self.inboxes[t]
            .iter()
            .filter(|m| from.is_none_or(|f| m.from == f) && tag.is_none_or(|g| m.tag == g))
            .map(|m| m.arrival)
            .min();
        match arrival {
            None => {
                self.emit_watchdog(now, StallKind::Receive);
                Err(self.receive_trip(
                    t,
                    wd,
                    now,
                    format!(
                        "task {t} receive (from {from:?}, tag {tag:?}) has no matching \
                         in-flight message and can never complete"
                    ),
                ))
            }
            Some(arr) => {
                let wait = arr.saturating_sub(now);
                if wd.expired(wait) {
                    self.emit_watchdog(now, StallKind::Receive);
                    Err(self.receive_trip(
                        t,
                        wd,
                        wait,
                        format!(
                            "task {t} receive (from {from:?}, tag {tag:?}) would spin \
                             {wait} cycles for its message"
                        ),
                    ))
                } else {
                    Ok(self.recv(t, from, tag).expect("matching message exists"))
                }
            }
        }
    }

    /// Watched variant of [`Pvm::send`]: a send that exhausts its
    /// retry budget (or is otherwise rejected) becomes a
    /// [`StallKind::RetryLoop`] report instead of a panic, with the
    /// typed [`SimError`] message as the detail.
    pub fn send_watched(
        &mut self,
        from: usize,
        to: usize,
        bytes: usize,
        tag: u32,
        wd: &Watchdog,
    ) -> Result<(), WatchdogReport> {
        self.try_send(from, to, bytes, tag).map_err(|e| {
            let observed = self.tasks.get(from).map(|t| t.clock).unwrap_or(0);
            self.emit_watchdog(observed, StallKind::RetryLoop);
            wd.trip(StallKind::RetryLoop, observed, e.to_string())
                .with_cpu_clocks(self.tasks.iter().map(|s| (s.cpu.0, s.clock)).collect())
        })
    }

    /// Message-fault counters for this session (all zero without an
    /// active fault plan).
    pub fn fault_stats(&self) -> PvmFaultStats {
        self.faults
    }

    /// True if a matching message is waiting (non-blocking probe).
    pub fn probe(&self, t: usize, from: Option<usize>, tag: Option<u32>) -> bool {
        self.inboxes[t]
            .iter()
            .any(|m| from.is_none_or(|f| m.from == f) && tag.is_none_or(|g| m.tag == g))
    }

    /// Synchronize all tasks (message-based barrier through the
    /// daemon): every clock advances to the max plus one round of
    /// notification costs.
    pub fn barrier_all(&mut self) {
        let span: Vec<NodeId> = self
            .tasks
            .iter()
            .map(|t| self.machine.config().node_of_cpu(t.cpu))
            .collect();
        let max = self.elapsed();
        let multi_node = span.windows(2).any(|w| w[0] != w[1]);
        let c = self.cost.notify_local
            + if multi_node {
                self.cost.notify_remote_extra
            } else {
                0
            };
        for t in &mut self.tasks {
            t.clock = max + c;
        }
    }

    /// The shared buffer region hosted on `node` (diagnostics).
    pub fn buffer_region(&self, node: usize) -> Region {
        self.buffers[node]
    }

    /// Broadcast `bytes` from `root` to every other task (linear fan:
    /// the root packs once, sends one descriptor per receiver, each
    /// receiver unpacks — the ConvexPVM shared buffer means one copy
    /// in, one copy out per receiver).
    pub fn bcast(&mut self, root: usize, bytes: usize, tag: u32) {
        self.pack(root, bytes);
        for t in 0..self.num_tasks() {
            if t != root {
                self.send(root, t, bytes, tag);
            }
        }
        for t in 0..self.num_tasks() {
            if t != root {
                self.recv(t, Some(root), Some(tag)).expect("bcast lost");
                self.unpack(t, bytes);
            }
        }
    }

    /// Gather `bytes` from every task to `root` (each sender packs,
    /// the root unpacks serially — the root is the bottleneck, as it
    /// was in 1995).
    pub fn gather(&mut self, root: usize, bytes: usize, tag: u32) {
        for t in 0..self.num_tasks() {
            if t != root {
                self.pack(t, bytes);
                self.send(t, root, bytes, tag);
            }
        }
        for t in 0..self.num_tasks() {
            if t != root {
                self.recv(root, Some(t), Some(tag)).expect("gather lost");
                self.unpack(root, bytes);
            }
        }
    }

    /// Butterfly all-reduce of `bytes` per task with `flops_per_elem`
    /// combination work on 8-byte elements (requires a power-of-two
    /// task count). This is the collective the replicated-grid
    /// applications lean on.
    ///
    /// # Panics
    /// If the task count is not a power of two ("butterfly needs a
    /// power-of-two task count"). Use [`Pvm::try_allreduce`] for the
    /// typed [`SimError`] instead.
    pub fn allreduce(&mut self, bytes: usize, tag_base: u32, flops_per_elem: u64) {
        self.try_allreduce(bytes, tag_base, flops_per_elem)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Pvm::allreduce`].
    pub fn try_allreduce(
        &mut self,
        bytes: usize,
        tag_base: u32,
        flops_per_elem: u64,
    ) -> Result<(), SimError> {
        let t = self.num_tasks();
        if !t.is_power_of_two() {
            return Err(SimError::NotPowerOfTwoTasks { tasks: t });
        }
        let elems = bytes as u64 / 8;
        for r in 0..t.trailing_zeros() {
            let tag = tag_base + r;
            for i in 0..t {
                self.pack(i, bytes);
                self.send(i, i ^ (1 << r), bytes, tag);
            }
            for i in 0..t {
                let partner = i ^ (1 << r);
                self.recv(i, Some(partner), Some(tag)).expect("reduce lost");
                self.unpack(i, bytes);
                self.flops(i, elems * flops_per_elem);
            }
        }
        Ok(())
    }

    /// Ping-pong round trip of a `bytes` message between two tasks,
    /// excluding pack cost — exactly the §4.3 measurement. Returns the
    /// round-trip time in cycles.
    pub fn round_trip(&mut self, a: usize, b: usize, bytes: usize, reps: usize) -> Cycles {
        let start_a = self.tasks[a].clock;
        for i in 0..reps.max(1) {
            self.send(a, b, bytes, 1000 + i as u32);
            let m = self.recv(b, Some(a), None).expect("ping lost");
            self.send(b, a, bytes, m.tag);
            self.recv(a, Some(b), None).expect("pong lost");
        }
        (self.tasks[a].clock - start_a) / reps.max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::cycles_to_us;

    fn two_tasks_local() -> Pvm {
        Pvm::spp1000(2, &[CpuId(0), CpuId(1)])
    }

    fn two_tasks_global() -> Pvm {
        Pvm::spp1000(2, &[CpuId(0), CpuId(8)])
    }

    #[test]
    fn traced_session_emits_send_recv_events_with_task_stamps() {
        let mut pvm = Pvm::new(Machine::spp1000(2).with_tracing(), &[CpuId(0), CpuId(8)]);
        pvm.send(0, 1, 1024, 7);
        let msg = pvm.recv(1, Some(0), Some(7)).unwrap();
        let events = pvm.machine.trace_events();
        let send = events
            .iter()
            .find(|r| matches!(r.event, TraceEvent::PvmSend { .. }))
            .expect("send event");
        assert_eq!((send.cpu, send.node), (0, 0), "stamped with sender");
        assert_eq!(send.at, msg.arrival, "stamped at inbox arrival");
        let recv = events
            .iter()
            .find(|r| matches!(r.event, TraceEvent::PvmRecv { .. }))
            .expect("recv event");
        assert_eq!((recv.cpu, recv.node), (8, 1), "stamped with receiver");
        assert_eq!(recv.at, pvm.clock(1), "stamped after the recv path");
        match recv.event {
            TraceEvent::PvmRecv {
                from,
                to,
                bytes,
                tag,
            } => assert_eq!((from, to, bytes, tag), (0, 1, 1024, 7)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn traced_receive_stall_emits_a_watchdog_event() {
        let mut pvm = Pvm::new(Machine::spp1000(1).with_tracing(), &[CpuId(0), CpuId(1)]);
        pvm.recv_watched(1, Some(0), None, &Watchdog::new(1_000))
            .expect_err("no message was ever sent");
        assert!(pvm.machine.trace_events().iter().any(|r| matches!(
            r.event,
            TraceEvent::Watchdog {
                kind: StallKind::Receive
            }
        )));
    }

    #[test]
    fn tracing_does_not_change_pvm_clocks() {
        let run = |traced: bool| {
            let m = Machine::spp1000(2);
            let m = if traced { m.with_tracing() } else { m };
            let mut pvm = Pvm::new(m, &[CpuId(0), CpuId(8)]);
            let rt = pvm.round_trip(0, 1, 4096, 3);
            (rt, pvm.clock(0), pvm.clock(1))
        };
        assert_eq!(run(false), run(true));
    }

    // Paper anchor (§4.3, Figure 4): intra-hypernode PVM round trips
    // sit near 30 µs for messages under the 8 KB page threshold. The
    // ±5 µs window is intentionally tight — it pins the calibrated
    // send/recv/notify constants; loosen only if the cost model is
    // deliberately re-calibrated.
    #[test]
    fn local_round_trip_is_about_30us_under_8k() {
        let mut pvm = two_tasks_local();
        for bytes in [8usize, 256, 1024, 8192] {
            let rt = cycles_to_us(pvm.round_trip(0, 1, bytes, 4));
            assert!((25.0..=35.0).contains(&rt), "{bytes} B -> {rt} us");
        }
    }

    // Paper anchor (§4.3, Figure 4): cross-hypernode round trips are
    // ~70 µs under 8 KB. Intentionally tight for the same reason as
    // the local-round-trip window above.
    #[test]
    fn global_round_trip_is_about_70us_under_8k() {
        let mut pvm = two_tasks_global();
        for bytes in [8usize, 1024, 8192] {
            let rt = cycles_to_us(pvm.round_trip(0, 1, bytes, 4));
            assert!((60.0..=80.0).contains(&rt), "{bytes} B -> {rt} us");
        }
    }

    // Paper anchor (§4.3): the global/local round-trip ratio is about
    // 70/30 ≈ 2.3. Intentionally tight — it checks the *relative*
    // calibration of the two paths, not just each in isolation.
    #[test]
    fn global_to_local_ratio_is_about_2_3() {
        let mut l = two_tasks_local();
        let mut g = two_tasks_global();
        let rl = l.round_trip(0, 1, 1024, 8) as f64;
        let rg = g.round_trip(0, 1, 1024, 8) as f64;
        let ratio = rg / rl;
        assert!((1.9..=2.8).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn cost_grows_substantially_past_8k() {
        let mut pvm = two_tasks_local();
        let r8k = pvm.round_trip(0, 1, 8192, 4);
        let r16k = pvm.round_trip(0, 1, 16384, 4);
        let r64k = pvm.round_trip(0, 1, 65536, 4);
        assert!(r16k as f64 > r8k as f64 * 1.5, "{r8k} {r16k}");
        assert!(r64k > r16k * 2, "{r16k} {r64k}");
    }

    #[test]
    fn send_recv_delivers_in_order_with_tags() {
        let mut pvm = two_tasks_local();
        pvm.send(0, 1, 100, 1);
        pvm.send(0, 1, 200, 2);
        let m2 = pvm.recv(1, Some(0), Some(2)).unwrap();
        assert_eq!(m2.bytes, 200);
        let m1 = pvm.recv(1, Some(0), None).unwrap();
        assert_eq!(m1.tag, 1);
        assert!(pvm.recv(1, None, None).is_none());
    }

    #[test]
    fn recv_waits_for_arrival() {
        let mut pvm = two_tasks_local();
        pvm.send(0, 1, 64, 0);
        let sent_at = pvm.clock(0);
        let m = pvm.recv(1, None, None).unwrap();
        assert_eq!(m.arrival, sent_at);
        assert!(pvm.clock(1) > sent_at);
    }

    #[test]
    fn probe_sees_pending_messages() {
        let mut pvm = two_tasks_local();
        assert!(!pvm.probe(1, None, None));
        pvm.send(0, 1, 1, 9);
        assert!(pvm.probe(1, Some(0), Some(9)));
        assert!(!pvm.probe(1, Some(0), Some(8)));
    }

    #[test]
    fn pack_costs_scale_with_size() {
        let mut pvm = two_tasks_local();
        pvm.pack(0, 32);
        let small = pvm.clock(0);
        pvm.pack(0, 32 * 100);
        assert!(pvm.clock(0) - small >= small * 50);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut pvm = Pvm::spp1000(2, &[CpuId(0), CpuId(1), CpuId(8)]);
        pvm.flops(0, 100_000);
        pvm.barrier_all();
        assert_eq!(pvm.clock(0), pvm.clock(1));
        assert_eq!(pvm.clock(1), pvm.clock(2));
        assert!(pvm.clock(0) > 0);
    }

    #[test]
    fn flops_tracked_per_task() {
        let mut pvm = two_tasks_local();
        pvm.flops(0, 500);
        pvm.flops(1, 700);
        assert_eq!(pvm.total_flops(), 1200);
        assert!(pvm.clock(0) < pvm.clock(1));
    }

    #[test]
    fn messages_between_a_pair_arrive_fifo() {
        let mut pvm = two_tasks_local();
        for i in 0..5u32 {
            pvm.send(0, 1, 64, 7);
            let _ = i;
        }
        let mut arrivals = Vec::new();
        while let Some(m) = pvm.recv(1, Some(0), Some(7)) {
            arrivals.push(m.arrival);
        }
        assert_eq!(arrivals.len(), 5);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "{arrivals:?}");
    }

    #[test]
    fn compute_charges_clock_and_flops() {
        let mut pvm = two_tasks_local();
        let c0 = pvm.clock(0);
        pvm.compute(0, |ctx| {
            ctx.flops(500);
            ctx.cycles(100);
        });
        assert_eq!(pvm.clock(0), c0 + 1000 + 100); // 2 cy/flop + 100
        assert_eq!(pvm.total_flops(), 500);
        assert_eq!(pvm.clock(1), 0, "other task unaffected");
    }

    #[test]
    fn elapsed_is_the_max_task_clock() {
        let mut pvm = two_tasks_local();
        pvm.flops(0, 100);
        pvm.flops(1, 900);
        assert_eq!(pvm.elapsed(), pvm.clock(1));
        assert!(pvm.elapsed_us() > 0.0);
    }

    #[test]
    #[should_panic(expected = "sending to itself")]
    fn self_send_rejected() {
        let mut pvm = two_tasks_local();
        pvm.send(0, 0, 1, 0);
    }

    #[test]
    fn bcast_reaches_everyone_and_costs_root_one_pack() {
        let cpus: Vec<CpuId> = (0..4u16).map(CpuId).collect();
        let mut pvm = Pvm::spp1000(2, &cpus);
        pvm.bcast(0, 4096, 50);
        // All inboxes drained.
        for t in 1..4 {
            assert!(!pvm.probe(t, None, None), "task {t} has leftover msgs");
            assert!(pvm.clock(t) > 0, "task {t} never received");
        }
        // Root packed once (128 lines), sent 3 descriptors.
        let root_clock = pvm.clock(0);
        let expected_min = pvm.cost.copy_cost(4096) + 3 * pvm.cost.one_way(4096, true);
        assert!(root_clock >= expected_min);
    }

    #[test]
    fn gather_serializes_at_the_root() {
        let cpus: Vec<CpuId> = (0..8u16).map(CpuId).collect();
        let mut pvm = Pvm::spp1000(2, &cpus);
        pvm.gather(0, 8192, 60);
        // The root unpacked 7 messages: its clock dominates.
        let root = pvm.clock(0);
        for t in 1..8 {
            assert!(root > pvm.clock(t), "root should be the bottleneck");
        }
    }

    #[test]
    fn allreduce_butterfly_runs_log2_rounds() {
        let cpus: Vec<CpuId> = (0..8u16).map(CpuId).collect();
        let mut pvm = Pvm::spp1000(2, &cpus);
        pvm.allreduce(1024, 100, 1);
        // 3 rounds x (pack + send + recv + unpack + 128 flops) per task;
        // clocks roughly equal (symmetric butterfly).
        let clocks: Vec<u64> = (0..8).map(|t| pvm.clock(t)).collect();
        let min = *clocks.iter().min().unwrap();
        let max = *clocks.iter().max().unwrap();
        assert!(min > 0);
        assert!(
            max as f64 / (min as f64) < 1.5,
            "butterfly unbalanced: {clocks:?}"
        );
        assert_eq!(pvm.total_flops(), 8 * 3 * 128);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn allreduce_rejects_odd_task_counts() {
        let cpus: Vec<CpuId> = (0..3u16).map(CpuId).collect();
        let mut pvm = Pvm::spp1000(2, &cpus);
        pvm.allreduce(64, 0, 1);
    }

    #[test]
    fn shared_buffers_exist_per_node() {
        let pvm = two_tasks_global();
        let b0 = pvm.buffer_region(0);
        let b1 = pvm.buffer_region(1);
        assert!(b0.len >= 1 << 20);
        assert!(b1.base > b0.base);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        use spp_core::Machine;
        assert!(matches!(
            Pvm::try_new(Machine::spp1000(2), &[]),
            Err(SimError::NoTasks)
        ));
        assert!(matches!(
            Pvm::try_new(Machine::spp1000(2), &[CpuId(99)]),
            Err(SimError::CpuOutOfRange { cpu: 99, cpus: 16 })
        ));
    }

    fn faulty_pair(seed: u64, drop: f64, dup: f64) -> Pvm {
        use spp_core::{FaultPlan, Machine};
        let m =
            Machine::spp1000(2).with_faults(FaultPlan::new(seed).with_message_faults(drop, dup));
        Pvm::new(m, &[CpuId(0), CpuId(8)])
    }

    #[test]
    fn dropped_sends_retry_deterministically_and_cost_time() {
        let run = |seed| {
            let mut pvm = faulty_pair(seed, 0.3, 0.0);
            for i in 0..40u32 {
                pvm.send(0, 1, 256, i);
                pvm.recv(1, Some(0), Some(i)).expect("lost despite retry");
            }
            (pvm.elapsed(), pvm.fault_stats())
        };
        let (elapsed_a, stats_a) = run(11);
        let (elapsed_b, stats_b) = run(11);
        assert_eq!(elapsed_a, elapsed_b, "same seed, same schedule");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.retries > 0, "30% drop rate over 40 sends");
        // Every retry pays the acknowledgment timeout on top of the
        // repeated one-way cost.
        let clean = {
            let mut pvm = two_tasks_global();
            for i in 0..40u32 {
                pvm.send(0, 1, 256, i);
                pvm.recv(1, Some(0), Some(i)).unwrap();
            }
            pvm.elapsed()
        };
        let min_overhead = stats_a.retries * pvm_retry_floor();
        assert!(
            elapsed_a >= clean + min_overhead,
            "{elapsed_a} vs {clean} + {min_overhead}"
        );
    }

    fn pvm_retry_floor() -> Cycles {
        PvmCostModel::spp1000().retry_timeout
    }

    #[test]
    fn duplicated_deliveries_are_discarded_by_seq() {
        // dup probability 1.0: every delivery arrives twice.
        let mut pvm = faulty_pair(5, 0.0, 1.0);
        pvm.send(0, 1, 64, 7);
        let m = pvm.recv(1, Some(0), Some(7)).expect("original delivery");
        assert_eq!(m.bytes, 64);
        assert!(
            pvm.recv(1, Some(0), Some(7)).is_none(),
            "twin must be discarded, not delivered"
        );
        let stats = pvm.fault_stats();
        assert_eq!(stats.dups_injected, 1);
        assert_eq!(stats.dups_discarded, 1);
    }

    #[test]
    fn seq_numbers_distinguish_reused_tags() {
        // Same tag every round: dedup must key on (from, seq), not
        // tag, or round 2's message would be mistaken for a replay.
        let mut pvm = faulty_pair(5, 0.0, 1.0);
        for _ in 0..3 {
            pvm.send(0, 1, 64, 7);
            assert!(pvm.recv(1, Some(0), Some(7)).is_some());
        }
        assert_eq!(pvm.fault_stats().dups_discarded, 3);
    }

    #[test]
    fn certain_drops_exhaust_the_retry_budget() {
        let mut pvm = faulty_pair(3, 1.0, 0.0);
        let err = pvm.try_send(0, 1, 64, 9).unwrap_err();
        assert!(matches!(
            err,
            SimError::MessageTimeout {
                from: 0,
                to: 1,
                tag: 9,
                attempts: 7
            }
        ));
        assert_eq!(pvm.fault_stats().retries as u32, pvm.cost.max_retries);
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn send_panics_on_timeout_with_typed_message() {
        let mut pvm = faulty_pair(3, 1.0, 0.0);
        pvm.send(0, 1, 64, 9);
    }

    #[test]
    fn try_send_rejects_bad_task_indices() {
        let mut pvm = two_tasks_local();
        assert!(matches!(
            pvm.try_send(0, 5, 64, 0),
            Err(SimError::TaskOutOfRange { task: 5, tasks: 2 })
        ));
        assert!(matches!(
            pvm.try_send(1, 1, 64, 0),
            Err(SimError::SelfSend { task: 1 })
        ));
    }

    #[test]
    fn recv_watched_matches_plain_recv_when_message_exists() {
        let wd = Watchdog::new(u64::MAX - 1);
        let mut a = two_tasks_local();
        let mut b = two_tasks_local();
        a.send(0, 1, 128, 3);
        b.send(0, 1, 128, 3);
        let plain = a.recv(1, Some(0), Some(3)).unwrap();
        let watched = b
            .recv_watched(1, Some(0), Some(3), &wd)
            .expect("matching message must not trip");
        assert_eq!(plain, watched);
        assert_eq!(a.clock(1), b.clock(1));
    }

    #[test]
    fn recv_watched_trips_on_missing_message_with_inbox_dump() {
        let mut pvm = two_tasks_local();
        pvm.send(0, 1, 64, 7);
        let rep = pvm
            .recv_watched(1, Some(0), Some(9), &Watchdog::new(1_000_000))
            .expect_err("no tag-9 message was ever sent");
        assert_eq!(rep.kind, StallKind::Receive);
        assert!(rep.to_string().contains("can never complete"), "{rep}");
        // The queued tag-7 message shows up as in-flight state.
        assert_eq!(rep.in_flight, vec![(0, 7, 0)]);
        // The undelivered message is still there for a correct receive.
        assert!(pvm.probe(1, Some(0), Some(7)));
    }

    #[test]
    fn recv_watched_trips_when_the_wait_exceeds_the_deadline() {
        let mut pvm = two_tasks_local();
        pvm.flops(0, 1_000_000); // sender clock runs far ahead
        pvm.send(0, 1, 64, 4);
        let rep = pvm
            .recv_watched(1, Some(0), Some(4), &Watchdog::new(100))
            .expect_err("receiver would spin past its deadline");
        assert_eq!(rep.kind, StallKind::Receive);
        assert!(rep.observed > 100, "observed = {}", rep.observed);
        assert!(rep.to_string().contains("would spin"), "{rep}");
    }

    #[test]
    fn send_watched_reports_retry_livelock() {
        let mut pvm = faulty_pair(3, 1.0, 0.0);
        let rep = pvm
            .send_watched(0, 1, 64, 9, &Watchdog::new(1_000_000))
            .expect_err("certain drops must trip");
        assert_eq!(rep.kind, StallKind::RetryLoop);
        assert!(rep.to_string().contains("timed out"), "{rep}");
        assert_eq!(rep.cpu_clocks.len(), 2);
    }

    #[test]
    fn collectives_survive_message_faults() {
        use spp_core::{FaultPlan, Machine};
        let cpus: Vec<CpuId> = (0..8u16).map(CpuId).collect();
        let m = Machine::spp1000(2).with_faults(FaultPlan::new(21).with_message_faults(0.1, 0.1));
        let mut pvm = Pvm::new(m, &cpus);
        pvm.bcast(0, 4096, 50);
        pvm.allreduce(1024, 100, 1);
        pvm.gather(0, 2048, 200);
        for t in 0..8 {
            assert!(!pvm.probe(t, None, None), "task {t} has leftover msgs");
        }
        let stats = pvm.fault_stats();
        assert_eq!(stats.dups_injected, stats.dups_discarded);
    }
}
