//! Runtime (software) cost model: thread management and scheduling
//! overheads that sit *above* the memory system.
//!
//! The paper's §4.1 measurements pin these down directly on the
//! testbed: spawning threads with high locality costs ~10 µs per pair
//! (~5 µs/thread), spawning across hypernodes ~20 µs per pair, and a
//! one-time ~50 µs penalty is incurred "once threads start to be
//! spawned on two hypernodes" (the second hypernode's kernel must
//! activate the process there). These are operating-system code paths,
//! which we model as constants; everything the hardware does (barrier
//! coherence traffic, semaphore accesses) is simulated through the
//! machine model instead.

use spp_core::{us_to_cycles, Cycles};

/// Thread-management cost constants, in cycles.
#[derive(Debug, Clone)]
pub struct RuntimeCostModel {
    /// Fixed cost of entering the fork machinery (parent side).
    pub fork_base: Cycles,
    /// Spawning one thread on the parent's own hypernode.
    pub spawn_local: Cycles,
    /// Spawning one thread on another hypernode.
    pub spawn_remote: Cycles,
    /// One-time cost the first time a fork places threads on a second
    /// (or further) hypernode: cross-kernel process activation.
    pub node_activation: Cycles,
    /// Fixed parent-side cost of completing a join after the barrier.
    pub join_base: Cycles,
    /// Serialization window at the directory when many CPUs re-fetch
    /// the barrier flag line after release (per waiting CPU).
    pub hot_line_service: Cycles,
    /// Software cost of one critical-section entry/exit pair
    /// (semaphore management around the uncached hardware op).
    pub gate_overhead: Cycles,
    /// Cycles of compute per floating-point operation, folding in the
    /// integer/addressing instructions that surround it. The PA-7100
    /// issues one FLOP and one memory reference per cycle at best;
    /// real scalar code sustains roughly one FLOP every two cycles.
    pub cycles_per_flop: f64,
    /// Initial backoff after a failed thread spawn under fault
    /// injection (doubles per retry).
    pub spawn_retry_backoff: Cycles,
    /// Spawn attempts (including the first) before the runtime gives
    /// up and panics with [`spp_core::SimError::SpawnFailed`].
    pub spawn_max_attempts: u32,
}

impl RuntimeCostModel {
    /// The calibrated SPP-1000 runtime model (values from §4.1).
    pub fn spp1000() -> Self {
        RuntimeCostModel {
            fork_base: us_to_cycles(12.0),
            spawn_local: us_to_cycles(5.0),
            spawn_remote: us_to_cycles(10.0),
            node_activation: us_to_cycles(50.0),
            join_base: us_to_cycles(3.0),
            hot_line_service: 150,
            gate_overhead: us_to_cycles(1.0),
            cycles_per_flop: 2.0,
            spawn_retry_backoff: us_to_cycles(25.0),
            spawn_max_attempts: 8,
        }
    }

    /// Cycles for `n` floating-point operations.
    #[inline]
    pub fn flop_cycles(&self, n: u64) -> Cycles {
        (n as f64 * self.cycles_per_flop).round() as Cycles
    }
}

impl Default for RuntimeCostModel {
    fn default() -> Self {
        Self::spp1000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::cycles_to_us;

    #[test]
    fn spawn_costs_match_paper_slopes() {
        let c = RuntimeCostModel::spp1000();
        // ~10 us per local pair, ~20 us per remote pair.
        assert!((9.0..=11.0).contains(&cycles_to_us(2 * c.spawn_local)));
        assert!((18.0..=22.0).contains(&cycles_to_us(2 * c.spawn_remote)));
        // ~50 us cross-hypernode activation.
        assert!((45.0..=55.0).contains(&cycles_to_us(c.node_activation)));
    }

    #[test]
    fn flop_cycles_scale_linearly() {
        let c = RuntimeCostModel::spp1000();
        assert_eq!(c.flop_cycles(0), 0);
        assert_eq!(c.flop_cycles(100), 200);
    }
}
