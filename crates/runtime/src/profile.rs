//! A CXpa-style profiler.
//!
//! §6 of the paper: "an excellent tool, CXpa provided good average
//! behavior profiling that exposes at least coarse grained imbalances
//! in execution across the parallel resources. With these means of
//! observing system behaviour, code modifications were made rapidly
//! and to good effect." This module gives the simulated applications
//! the same view: named parallel regions accumulate elapsed time,
//! per-thread busy times, flops and load balance.

use crate::fork::RegionReport;
use spp_core::Cycles;

/// Accumulated statistics for one named region.
#[derive(Debug, Clone, Default)]
pub struct RegionStat {
    /// Region name.
    pub name: String,
    /// Invocations.
    pub calls: u64,
    /// Total elapsed cycles (fork to join).
    pub elapsed: Cycles,
    /// Sum of per-thread busy cycles.
    pub busy_total: Cycles,
    /// Sum over calls of the max per-thread busy time.
    pub busy_max: Cycles,
    /// FLOPs executed.
    pub flops: u64,
}

impl RegionStat {
    /// Load balance in (0, 1]: mean busy time over max busy time.
    /// 1.0 = perfectly balanced; low values expose the imbalances
    /// CXpa was prized for revealing.
    pub fn balance(&self, threads_hint: f64) -> f64 {
        if self.busy_max == 0 {
            1.0
        } else {
            (self.busy_total as f64 / threads_hint) / self.busy_max as f64
        }
    }
}

/// The profiler: feed it every region's [`RegionReport`].
#[derive(Debug, Clone, Default)]
pub struct Profile {
    regions: Vec<RegionStat>,
    threads: f64,
}

impl Profile {
    /// Fresh profiler.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Record one parallel region under `name`.
    pub fn record(&mut self, name: &str, rep: &RegionReport) {
        self.threads = rep.busy.len() as f64;
        let stat = match self.regions.iter_mut().find(|r| r.name == name) {
            Some(s) => s,
            None => {
                self.regions.push(RegionStat {
                    name: name.to_string(),
                    ..Default::default()
                });
                self.regions.last_mut().unwrap()
            }
        };
        stat.calls += 1;
        stat.elapsed += rep.elapsed;
        stat.busy_total += rep.busy.iter().sum::<u64>();
        stat.busy_max += rep.busy.iter().copied().max().unwrap_or(0);
        stat.flops += rep.flops;
    }

    /// All region stats, in first-seen order.
    pub fn regions(&self) -> &[RegionStat] {
        &self.regions
    }

    /// Total elapsed cycles across regions.
    pub fn total_elapsed(&self) -> Cycles {
        self.regions.iter().map(|r| r.elapsed).sum()
    }

    /// Render the CXpa-like table: per region, share of time, load
    /// balance and sustained rate.
    pub fn report(&self) -> String {
        let total = self.total_elapsed().max(1);
        let mut out = String::from(
            "region                calls      time(ms)   %time  balance   MF/s\n\
             ------------------------------------------------------------------\n",
        );
        for r in &self.regions {
            let ms = r.elapsed as f64 * 1e-5;
            let pct = 100.0 * r.elapsed as f64 / total as f64;
            let mf = if r.elapsed > 0 {
                r.flops as f64 / (r.elapsed as f64 * 1e-8) / 1e6
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<20} {:>6} {:>12.3} {:>7.1} {:>8.2} {:>6.1}\n",
                r.name,
                r.calls,
                ms,
                pct,
                r.balance(self.threads),
                mf
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fork::Runtime;
    use crate::team::Placement;

    #[test]
    fn records_and_reports() {
        let mut rt = Runtime::spp1000(1);
        let mut prof = Profile::new();
        for _ in 0..3 {
            let r = rt.fork_join(4, &Placement::HighLocality, |ctx| ctx.flops(1000));
            prof.record("compute", &r);
        }
        let r = rt.fork_join(4, &Placement::HighLocality, |_| {});
        prof.record("sync", &r);

        assert_eq!(prof.regions().len(), 2);
        assert_eq!(prof.regions()[0].calls, 3);
        assert_eq!(prof.regions()[0].flops, 3 * 4000);
        let rep = prof.report();
        assert!(rep.contains("compute"));
        assert!(rep.contains("sync"));
    }

    #[test]
    fn balance_exposes_imbalance() {
        let mut rt = Runtime::spp1000(1);
        let mut prof = Profile::new();
        // Thread 0 does 4x the work of the others.
        let r = rt.fork_join(4, &Placement::HighLocality, |ctx| {
            ctx.flops(if ctx.tid == 0 { 40_000 } else { 10_000 });
        });
        prof.record("skewed", &r);
        let b = prof.regions()[0].balance(4.0);
        assert!((0.3..=0.6).contains(&b), "balance = {b}");

        let r = rt.fork_join(4, &Placement::HighLocality, |ctx| {
            ctx.flops(10_000);
        });
        prof.record("even", &r);
        let b = prof.regions()[1].balance(4.0);
        assert!(b > 0.95, "balance = {b}");
    }

    #[test]
    fn empty_profile_is_harmless() {
        let prof = Profile::new();
        assert_eq!(prof.total_elapsed(), 0);
        assert!(prof.report().contains("region"));
    }
}
