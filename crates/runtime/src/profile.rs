//! A CXpa-style profiler.
//!
//! §6 of the paper: "an excellent tool, CXpa provided good average
//! behavior profiling that exposes at least coarse grained imbalances
//! in execution across the parallel resources. With these means of
//! observing system behaviour, code modifications were made rapidly
//! and to good effect." This module gives the simulated applications
//! the same view: named parallel regions accumulate elapsed time,
//! per-thread busy times, flops and load balance.

use crate::fork::RegionReport;
use spp_core::Cycles;

/// Accumulated statistics for one named region. With hierarchical
/// profiling (see [`Profile::enter`]) the name is a `/`-joined path,
/// e.g. `"pic/deposit"`.
#[derive(Debug, Clone, Default)]
pub struct RegionStat {
    /// Region name (possibly a `/`-joined hierarchical path).
    pub name: String,
    /// Invocations.
    pub calls: u64,
    /// Total elapsed cycles (fork to join) — *simulated* time.
    pub elapsed: Cycles,
    /// Sum of per-thread busy cycles.
    pub busy_total: Cycles,
    /// Sum over calls of the max per-thread busy time.
    pub busy_max: Cycles,
    /// FLOPs executed.
    pub flops: u64,
    /// Host wall-clock nanoseconds attributed by
    /// [`Profile::enter`]/[`Profile::exit`] bracketing — *host* time,
    /// never part of the deterministic trace stream.
    pub wall_ns: u64,
}

impl RegionStat {
    /// Load balance in (0, 1]: mean busy time over max busy time.
    /// 1.0 = perfectly balanced; low values expose the imbalances
    /// CXpa was prized for revealing. A region that never ran
    /// (`busy_max == 0`) or a non-positive thread hint reports 1.0
    /// rather than dividing by zero.
    pub fn balance(&self, threads_hint: f64) -> f64 {
        if self.busy_max == 0 || threads_hint <= 0.0 {
            1.0
        } else {
            (self.busy_total as f64 / threads_hint) / self.busy_max as f64
        }
    }

    /// Nesting depth of the region's path (`"a/b/c"` → 2).
    pub fn depth(&self) -> usize {
        self.name.matches('/').count()
    }
}

/// The profiler: feed it every region's [`RegionReport`], optionally
/// nesting records under hierarchical spans opened with
/// [`Profile::enter`].
#[derive(Debug, Clone, Default)]
pub struct Profile {
    regions: Vec<RegionStat>,
    threads: f64,
    /// Open hierarchical span names, innermost last.
    path: Vec<String>,
    /// Host wall-clock marks parallel to `path`.
    marks: Vec<std::time::Instant>,
}

impl Profile {
    /// Fresh profiler.
    pub fn new() -> Self {
        Profile::default()
    }

    /// Open a hierarchical span: until the matching [`Profile::exit`],
    /// every [`Profile::record`] is filed under `name/…`. Spans nest.
    pub fn enter(&mut self, name: &str) {
        self.path.push(name.to_string());
        self.marks.push(std::time::Instant::now());
    }

    /// Close the innermost span, attributing the host wall-clock time
    /// since its [`Profile::enter`] to the span's own region (sim
    /// cycles accrue through the records filed inside it).
    ///
    /// # Panics
    /// If no span is open (unbalanced nesting).
    pub fn exit(&mut self) {
        let mark = self.marks.pop().expect("Profile::exit without enter");
        let wall = mark.elapsed().as_nanos() as u64;
        let name = self.path.join("/");
        self.path.pop();
        let stat = self.stat_mut(&name);
        stat.wall_ns += wall;
    }

    /// True when every [`Profile::enter`] has a matching
    /// [`Profile::exit`] — the span-nesting invariant `repro-trace`
    /// asserts.
    pub fn balanced(&self) -> bool {
        self.path.is_empty()
    }

    /// The currently open span path (`""` at top level).
    pub fn current_path(&self) -> String {
        self.path.join("/")
    }

    /// Forget all recorded regions and open spans.
    pub fn reset(&mut self) {
        self.regions.clear();
        self.path.clear();
        self.marks.clear();
        self.threads = 0.0;
    }

    fn stat_mut(&mut self, name: &str) -> &mut RegionStat {
        match self.regions.iter().position(|r| r.name == name) {
            Some(i) => &mut self.regions[i],
            None => {
                self.regions.push(RegionStat {
                    name: name.to_string(),
                    ..Default::default()
                });
                self.regions.last_mut().unwrap()
            }
        }
    }

    /// Record one parallel region under `name` (qualified by the open
    /// span path, if any). Repeated names merge into one
    /// [`RegionStat`].
    pub fn record(&mut self, name: &str, rep: &RegionReport) {
        self.threads = rep.busy.len() as f64;
        let qualified = if self.path.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.path.join("/"), name)
        };
        let stat = self.stat_mut(&qualified);
        stat.calls += 1;
        stat.elapsed += rep.elapsed;
        stat.busy_total += rep.busy.iter().sum::<u64>();
        stat.busy_max += rep.busy.iter().copied().max().unwrap_or(0);
        stat.flops += rep.flops;
    }

    /// All region stats, in first-seen order.
    pub fn regions(&self) -> &[RegionStat] {
        &self.regions
    }

    /// Total elapsed cycles across regions.
    pub fn total_elapsed(&self) -> Cycles {
        self.regions.iter().map(|r| r.elapsed).sum()
    }

    /// Render the CXpa-like table: per region, share of time, load
    /// balance and sustained rate.
    pub fn report(&self) -> String {
        let total = self.total_elapsed().max(1);
        let mut out = String::from(
            "region                calls      time(ms)   %time  balance   MF/s  wall(ms)\n\
             ---------------------------------------------------------------------------\n",
        );
        for r in &self.regions {
            let ms = r.elapsed as f64 * 1e-5;
            let pct = 100.0 * r.elapsed as f64 / total as f64;
            let mf = if r.elapsed > 0 {
                r.flops as f64 / (r.elapsed as f64 * 1e-8) / 1e6
            } else {
                0.0
            };
            // Indent nested paths so the hierarchy reads at a glance.
            let label = format!("{}{}", "  ".repeat(r.depth()), r.name);
            out.push_str(&format!(
                "{:<20} {:>6} {:>12.3} {:>7.1} {:>8.2} {:>6.1} {:>9.3}\n",
                label,
                r.calls,
                ms,
                pct,
                r.balance(self.threads),
                mf,
                r.wall_ns as f64 * 1e-6
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fork::Runtime;
    use crate::team::Placement;

    #[test]
    fn records_and_reports() {
        let mut rt = Runtime::spp1000(1);
        let mut prof = Profile::new();
        for _ in 0..3 {
            let r = rt.fork_join(4, &Placement::HighLocality, |ctx| ctx.flops(1000));
            prof.record("compute", &r);
        }
        let r = rt.fork_join(4, &Placement::HighLocality, |_| {});
        prof.record("sync", &r);

        assert_eq!(prof.regions().len(), 2);
        assert_eq!(prof.regions()[0].calls, 3);
        assert_eq!(prof.regions()[0].flops, 3 * 4000);
        let rep = prof.report();
        assert!(rep.contains("compute"));
        assert!(rep.contains("sync"));
    }

    #[test]
    fn balance_exposes_imbalance() {
        let mut rt = Runtime::spp1000(1);
        let mut prof = Profile::new();
        // Thread 0 does 4x the work of the others.
        let r = rt.fork_join(4, &Placement::HighLocality, |ctx| {
            ctx.flops(if ctx.tid == 0 { 40_000 } else { 10_000 });
        });
        prof.record("skewed", &r);
        let b = prof.regions()[0].balance(4.0);
        assert!((0.3..=0.6).contains(&b), "balance = {b}");

        let r = rt.fork_join(4, &Placement::HighLocality, |ctx| {
            ctx.flops(10_000);
        });
        prof.record("even", &r);
        let b = prof.regions()[1].balance(4.0);
        assert!(b > 0.95, "balance = {b}");
    }

    #[test]
    fn empty_profile_is_harmless() {
        let prof = Profile::new();
        assert_eq!(prof.total_elapsed(), 0);
        assert!(prof.report().contains("region"));
    }

    #[test]
    fn balance_with_zero_threads_hint_is_one() {
        let mut rt = Runtime::spp1000(1);
        let mut prof = Profile::new();
        let r = rt.fork_join(4, &Placement::HighLocality, |ctx| ctx.flops(1_000));
        prof.record("z", &r);
        let s = &prof.regions()[0];
        assert!(s.busy_max > 0);
        assert_eq!(s.balance(0.0), 1.0, "zero hint must not divide by zero");
        assert_eq!(s.balance(-3.0), 1.0);
        assert!(s.balance(4.0).is_finite());
    }

    #[test]
    fn balance_of_a_single_call_single_thread_is_one() {
        let mut rt = Runtime::spp1000(1);
        let mut prof = Profile::new();
        let r = rt.fork_join(1, &Placement::HighLocality, |ctx| ctx.flops(500));
        prof.record("solo", &r);
        let b = prof.regions()[0].balance(1.0);
        assert!(
            (b - 1.0).abs() < 1e-9,
            "one thread is perfectly balanced: {b}"
        );
    }

    #[test]
    fn recorded_then_reset_profile_is_empty_and_reusable() {
        let mut rt = Runtime::spp1000(1);
        let mut prof = Profile::new();
        let r = rt.fork_join(4, &Placement::HighLocality, |ctx| ctx.flops(1_000));
        prof.record("before", &r);
        prof.enter("open");
        prof.reset();
        assert!(prof.regions().is_empty());
        assert!(prof.balanced(), "reset closes dangling spans");
        assert_eq!(prof.total_elapsed(), 0);
        // An untouched RegionStat after reset reports neutral balance.
        assert_eq!(RegionStat::default().balance(4.0), 1.0);
        prof.record("after", &r);
        assert_eq!(prof.regions().len(), 1);
        assert_eq!(prof.regions()[0].name, "after");
    }

    #[test]
    fn repeated_names_merge_into_one_region_stat() {
        let mut rt = Runtime::spp1000(1);
        let mut prof = Profile::new();
        let r1 = rt.fork_join(4, &Placement::HighLocality, |ctx| ctx.flops(1_000));
        let r2 = rt.fork_join(4, &Placement::HighLocality, |ctx| ctx.flops(3_000));
        prof.record("phase", &r1);
        prof.record("phase", &r2);
        assert_eq!(prof.regions().len(), 1);
        let s = &prof.regions()[0];
        assert_eq!(s.calls, 2);
        assert_eq!(s.flops, 4 * 1_000 + 4 * 3_000);
        assert_eq!(s.elapsed, r1.elapsed + r2.elapsed);
        assert!(s.busy_total >= r1.busy.iter().sum::<u64>());
    }

    #[test]
    fn hierarchical_spans_qualify_and_attribute_wall_time() {
        let mut rt = Runtime::spp1000(1);
        let mut prof = Profile::new();
        prof.enter("app");
        assert_eq!(prof.current_path(), "app");
        prof.enter("step");
        let r = rt.fork_join(2, &Placement::HighLocality, |ctx| ctx.flops(100));
        prof.record("kernel", &r);
        prof.exit();
        prof.exit();
        assert!(prof.balanced());
        let names: Vec<&str> = prof.regions().iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"app/step/kernel"), "{names:?}");
        assert!(names.contains(&"app/step"));
        assert!(names.contains(&"app"));
        let kernel = prof
            .regions()
            .iter()
            .find(|r| r.name == "app/step/kernel")
            .unwrap();
        assert_eq!(kernel.depth(), 2);
        assert_eq!(kernel.calls, 1);
        let app = prof.regions().iter().find(|r| r.name == "app").unwrap();
        assert!(app.wall_ns > 0, "enter/exit bracketing measures wall time");
        assert!(prof.report().contains("app/step/kernel"));
    }

    #[test]
    #[should_panic(expected = "exit without enter")]
    fn unbalanced_exit_panics() {
        Profile::new().exit();
    }
}
