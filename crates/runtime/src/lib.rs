//! # spp-runtime — CPSlib-style threading on the simulated SPP-1000
//!
//! The Convex "Compiler Parallel Support Library" gave programs thread
//! creation, barriers, gates and placement control (paper §3.2). This
//! crate rebuilds those primitives *on the machine model*, so that the
//! costs the paper measures in §4 — fork-join (Fig. 2), barrier
//! synchronization (Fig. 3) — emerge from simulated protocol activity:
//!
//! * [`Runtime::fork_join`] — spawn a team with [`Placement`] control
//!   (*high locality* vs *uniform distribution*), replay each thread's
//!   body against the machine, and join through a simulated barrier;
//! * [`SimBarrier`] — the uncached-semaphore + cached-spin-flag
//!   barrier the paper describes, priced event by event;
//! * [`SimGate`] — serialized critical sections;
//! * [`PrivateArrays`] — the *thread private* memory class.
//!
//! ```
//! use spp_runtime::{Runtime, Placement};
//!
//! let mut rt = Runtime::spp1000(2);
//! let report = rt.fork_join(8, &Placement::HighLocality, |ctx| {
//!     ctx.flops(1_000); // each thread does 1k flops
//! });
//! assert!(report.elapsed_us() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod barrier;
pub mod cost;
pub mod fork;
pub mod gate;
pub mod interval;
pub mod noise;
pub mod profile;
pub mod team;

pub use barrier::{BarrierResult, SimBarrier};
pub use cost::RuntimeCostModel;
pub use fork::{AsyncHandle, RegionReport, Runtime, SchedulePolicy, ThreadCtx};
pub use gate::{PrivateArrays, SimGate};
pub use interval::{intervals_report, IntervalReport};
pub use noise::OsNoise;
pub use profile::{Profile, RegionStat};
pub use spp_core::{StallKind, Watchdog, WatchdogReport};
pub use team::{chunk_range, Placement, Team};
