//! Operating-system multitasking noise (§6 of the paper).
//!
//! "Most scientific applications are written with data structures and
//! control processes based on powers of 2. Most of the test codes
//! required 16 processors and could not easily be recast to run on 15
//! processors. As a result, operating system functions shared
//! execution resources with the applications ... critical path length
//! depended on exigencies of operating system demands."
//!
//! The model is deterministic: each thread of a parallel region is
//! interrupted roughly every `period` cycles for a `quantum`, with the
//! per-thread counts drawn from a seeded hash so runs are
//! reproducible. When a team occupies *every* CPU of the machine, the
//! OS has nowhere else to run and one victim thread per region is
//! additionally preempted for a full timeslice — the paper's
//! 16-on-16 problem. The model is **off by default** so all headline
//! experiments stay noise-free and deterministic in the simple sense.

use spp_core::Cycles;

/// Multitasking interference model.
#[derive(Debug, Clone)]
pub struct OsNoise {
    /// Mean cycles of thread execution between OS interruptions.
    pub period: Cycles,
    /// Cycles stolen per interruption.
    pub quantum: Cycles,
    /// Extra preemption applied to one victim thread per region when
    /// the team uses every CPU (a full OS timeslice).
    pub full_machine_slice: Cycles,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl OsNoise {
    /// A plausible mid-90s multitasking Unix: ~10 ms between daemon
    /// wakeups/kernel work, ~0.3 ms stolen each time, 10 ms timeslice.
    pub fn unix90s(seed: u64) -> Self {
        OsNoise {
            period: 1_000_000,             // 10 ms
            quantum: 30_000,               // 0.3 ms
            full_machine_slice: 1_000_000, // 10 ms
            seed,
        }
    }

    /// Deterministic per-(region, thread) hash in [0, 1).
    fn jitter(&self, region: u64, tid: usize) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(region.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((tid as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Cycles the OS steals from thread `tid` (of `nthreads`) during
    /// `busy` cycles of work in region number `region`.
    pub fn stolen(
        &self,
        region: u64,
        tid: usize,
        nthreads: usize,
        busy: Cycles,
        full_machine: bool,
    ) -> Cycles {
        if busy == 0 {
            return 0;
        }
        let expected = busy as f64 / self.period as f64;
        let u = self.jitter(region, tid);
        let events = expected.floor() as u64 + u64::from(u < expected.fract());
        let mut stolen = events * self.quantum;
        if full_machine {
            // One victim thread per region eats a full OS timeslice
            // (chosen deterministically by the region hash).
            let victim = (self.jitter(region, usize::MAX) * nthreads as f64) as usize;
            if tid == victim.min(nthreads - 1) {
                stolen += self.full_machine_slice;
            }
        }
        stolen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic() {
        let n = OsNoise::unix90s(42);
        let a = n.stolen(3, 5, 16, 10_000_000, true);
        let b = n.stolen(3, 5, 16, 10_000_000, true);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_scales_with_busy_time() {
        let n = OsNoise::unix90s(1);
        let short: Cycles = (0..32).map(|r| n.stolen(r, 0, 8, 100_000, false)).sum();
        let long: Cycles = (0..32).map(|r| n.stolen(r, 0, 8, 10_000_000, false)).sum();
        assert!(long > 10 * short.max(1), "short {short}, long {long}");
    }

    #[test]
    fn zero_busy_steals_nothing() {
        let n = OsNoise::unix90s(7);
        assert_eq!(n.stolen(0, 0, 16, 0, true), 0);
    }

    #[test]
    fn full_machine_regions_pay_a_slice() {
        let n = OsNoise::unix90s(11);
        // Over many regions, the full-machine total must exceed the
        // shared-machine total by roughly a slice per region.
        let busy = 2_000_000u64;
        let with: Cycles = (0..64)
            .map(|r| {
                (0..16)
                    .map(|t| n.stolen(r, t, 16, busy, true))
                    .max()
                    .unwrap()
            })
            .sum();
        let without: Cycles = (0..64)
            .map(|r| {
                (0..16)
                    .map(|t| n.stolen(r, t, 16, busy, false))
                    .max()
                    .unwrap()
            })
            .sum();
        assert!(
            with > without + 32 * n.full_machine_slice,
            "with {with}, without {without}"
        );
    }
}
