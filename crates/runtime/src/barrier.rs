//! Protocol-level barrier simulation.
//!
//! §4.2 of the paper describes the Convex barrier primitive exactly:
//! each thread decrements an *uncached* counting semaphore, then spins
//! reading a *cached* shared variable; the last thread to arrive sets
//! the variable, and the coherence machinery — invalidations to every
//! spinning sharer, then a storm of re-fetches serialized at the
//! directory (and an SCI list walk for remote hypernodes) — produces
//! the release-cost behaviour of Figure 3. We simulate that protocol
//! event by event against the machine model.

use crate::cost::RuntimeCostModel;
use spp_core::trace::{record, TraceEvent, NO_CPU, NO_NODE};
use spp_core::{
    CpuId, Cycles, MemClass, MemPort, NodeId, SimError, StallKind, Watchdog, WatchdogReport,
};

/// A barrier with its simulated memory (semaphore + release flag).
#[derive(Debug, Clone)]
pub struct SimBarrier {
    sem_addr: u64,
    flag_addr: u64,
    /// Software cost of the barrier entry path (call, decrement setup).
    enter_sw: Cycles,
    /// Writer-visible cost of setting the release flag: the write
    /// itself plus the window in which local invalidation acks are
    /// collected (invalidations to the node's caches are pipelined by
    /// the CCMC, so the writer sees a fixed cost; remote hypernodes
    /// are walked serially via SCI and priced per node).
    flag_write_base: Cycles,
    /// When set, the participant count every episode must supply (the
    /// team size the barrier was built for). On real hardware a
    /// mismatched count deadlocks or releases early; here it is a
    /// typed [`SimError::BarrierParticipants`].
    expected: Option<usize>,
}

/// Timing of one simulated barrier episode. All times are absolute
/// (same origin as the arrival times passed in).
#[derive(Debug, Clone)]
pub struct BarrierResult {
    /// When each thread resumed, in input order.
    pub release: Vec<Cycles>,
    /// Latest arrival (the "last in" timestamp).
    pub last_arrival: Cycles,
}

impl BarrierResult {
    /// "Last in – first out": last arrival to first resumption.
    pub fn lifo(&self) -> Cycles {
        self.release
            .iter()
            .min()
            .map_or(0, |m| m.saturating_sub(self.last_arrival))
    }

    /// "Last in – last out": last arrival to last resumption (the full
    /// release time).
    pub fn lilo(&self) -> Cycles {
        self.release
            .iter()
            .max()
            .map_or(0, |m| m.saturating_sub(self.last_arrival))
    }

    /// Absolute time at which every thread has resumed.
    pub fn end(&self) -> Cycles {
        self.release.iter().copied().max().unwrap_or(0)
    }
}

impl SimBarrier {
    /// Allocate barrier state. The semaphore and flag live in
    /// near-shared memory on `node`, like the CPSlib structures the
    /// paper measured.
    pub fn new<P: MemPort>(m: &mut P, node: NodeId) -> Self {
        let sem = m.alloc(MemClass::NearShared { node }, 64);
        let flag = m.alloc(MemClass::NearShared { node }, 64);
        SimBarrier {
            sem_addr: sem.base,
            flag_addr: flag.base,
            enter_sw: 25,
            flag_write_base: 100,
            expected: None,
        }
    }

    /// Pin the participant count to `n` (the team size). Episodes with
    /// any other count then fail with
    /// [`SimError::BarrierParticipants`] instead of silently pricing a
    /// protocol the hardware would deadlock on.
    pub fn with_expected(mut self, n: usize) -> Self {
        self.expected = Some(n);
        self
    }

    /// Validate an episode's participant list against the typed-error
    /// contract: no participants at all is [`SimError::EmptyBarrier`];
    /// a count that disagrees with [`SimBarrier::with_expected`] is
    /// [`SimError::BarrierParticipants`].
    fn check(&self, arrivals: &[(CpuId, Cycles)]) -> Result<(), SimError> {
        if arrivals.is_empty() {
            return Err(SimError::EmptyBarrier);
        }
        if let Some(expected) = self.expected {
            if arrivals.len() != expected {
                return Err(SimError::BarrierParticipants {
                    expected,
                    got: arrivals.len(),
                });
            }
        }
        Ok(())
    }

    /// Simulate one barrier episode: `arrivals[i] = (cpu, time)` is
    /// when thread `i` reaches the barrier. Returns per-thread
    /// resumption times. Panics on a malformed episode with the
    /// [`SimError`] message; see [`SimBarrier::try_simulate`] for the
    /// fallible variant.
    pub fn simulate<P: MemPort>(
        &self,
        m: &mut P,
        cost: &RuntimeCostModel,
        arrivals: &[(CpuId, Cycles)],
    ) -> BarrierResult {
        self.try_simulate(m, cost, arrivals)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`SimBarrier::simulate`]: returns
    /// [`SimError::EmptyBarrier`] or [`SimError::BarrierParticipants`]
    /// instead of panicking on a malformed episode.
    pub fn try_simulate<P: MemPort>(
        &self,
        m: &mut P,
        cost: &RuntimeCostModel,
        arrivals: &[(CpuId, Cycles)],
    ) -> Result<BarrierResult, SimError> {
        self.check(arrivals)?;
        Ok(self.simulate_inner(m, cost, arrivals))
    }

    fn simulate_inner<P: MemPort>(
        &self,
        m: &mut P,
        cost: &RuntimeCostModel,
        arrivals: &[(CpuId, Cycles)],
    ) -> BarrierResult {
        let last_arrival = arrivals.iter().map(|a| a.1).max().unwrap();

        if arrivals.len() == 1 {
            let (cpu, t) = arrivals[0];
            let dec = m.uncached_op(cpu, self.sem_addr);
            let resumed = t + self.enter_sw + dec + self.flag_write_base;
            if m.tracing() {
                let node = m.config().node_of_cpu(cpu).0;
                m.trace(record(t, cpu.0, node, TraceEvent::BarrierArrive));
                m.trace(record(resumed, cpu.0, node, TraceEvent::BarrierRelease));
            }
            return BarrierResult {
                release: vec![resumed],
                last_arrival,
            };
        }

        // Phase 1: semaphore decrements, serialized at the memory bank
        // in arrival order.
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.sort_by_key(|i| (arrivals[*i].1, *i));
        let mut bank_free = 0u64;
        let mut dec_done = vec![0u64; arrivals.len()];
        for &i in &order {
            let (cpu, t) = arrivals[i];
            let start = (t + self.enter_sw).max(bank_free);
            let c = m.uncached_op(cpu, self.sem_addr);
            dec_done[i] = start + c;
            bank_free = dec_done[i];
        }

        // The thread whose decrement completes last releases the rest.
        let writer = *order.iter().max_by_key(|i| (dec_done[**i], **i)).unwrap();
        let (wcpu, _) = arrivals[writer];
        let wnode = m.config().node_of_cpu(wcpu);

        // Phase 2: spinners read the flag (become sharers of its line).
        for (i, (cpu, _)) in arrivals.iter().enumerate() {
            if i != writer {
                let _ = m.read(*cpu, self.flag_addr);
            }
        }

        // Phase 3: the writer sets the flag. Its visible cost is the
        // write plus pipelined local-ack collection, plus a serial SCI
        // walk over every *other* hypernode that is spinning.
        let mut wcost = self.flag_write_base;
        let mut spin_nodes: Vec<NodeId> = arrivals
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != writer)
            .map(|(_, (c, _))| m.config().node_of_cpu(*c))
            .filter(|n| *n != wnode)
            .collect();
        spin_nodes.sort_unstable();
        spin_nodes.dedup();
        for n in &spin_nodes {
            let hops = m.config().ring_round_trip_hops(wnode, *n);
            wcost += m.config().latency.sci_invalidate_one(hops);
        }
        // Commit the coherence state change (sharers invalidated); the
        // serial cost the machine would charge is replaced by the
        // pipelined model above.
        let _ = m.write(wcpu, self.flag_addr);
        let write_done = dec_done[writer] + wcost;
        // The releasing thread exits through the same software path as
        // the spinners (one flag re-check through the loop).
        let writer_release = write_done + cost.hot_line_service;

        // Phase 4: spinners re-fetch the flag, serialized at the home
        // directory. Same-node spinners are serviced first (their
        // requests arrive first); the first spinner from each remote
        // node pays the SCI fetch, after which its node-mates hit the
        // global cache buffer.
        let mut spinners: Vec<usize> = (0..arrivals.len()).filter(|i| *i != writer).collect();
        spinners.sort_by_key(|i| {
            let node = m.config().node_of_cpu(arrivals[*i].0);
            (node != wnode, node.0, dec_done[*i], *i)
        });
        let mut release = vec![0u64; arrivals.len()];
        release[writer] = writer_release;
        for (k, &i) in spinners.iter().enumerate() {
            let fetch = m.read(arrivals[i].0, self.flag_addr);
            release[i] = write_done + (k as u64 + 1) * cost.hot_line_service + fetch;
        }

        if m.tracing() {
            for (i, (cpu, t)) in arrivals.iter().enumerate() {
                let node = m.config().node_of_cpu(*cpu).0;
                m.trace(record(*t, cpu.0, node, TraceEvent::BarrierArrive));
                m.trace(record(release[i], cpu.0, node, TraceEvent::BarrierRelease));
            }
        }

        BarrierResult {
            release,
            last_arrival,
        }
    }

    /// Watched variant of [`SimBarrier::simulate`]: detects barriers
    /// that can never complete instead of pricing a fiction.
    ///
    /// Trips with a [`WatchdogReport`] when
    ///
    /// * a participant's CPU is dead under the machine's hard-fault
    ///   model (it will never arrive — the arrival bitmap marks who
    ///   did), or
    /// * the arrival spread (last minus first arrival) exceeds the
    ///   watchdog deadline (a straggler livelock; the bitmap marks the
    ///   threads that made the deadline).
    ///
    /// Otherwise behaves exactly like `simulate`.
    pub fn simulate_watched<P: MemPort>(
        &self,
        m: &mut P,
        cost: &RuntimeCostModel,
        arrivals: &[(CpuId, Cycles)],
        wd: &Watchdog,
    ) -> Result<BarrierResult, WatchdogReport> {
        self.check(arrivals).unwrap_or_else(|e| panic!("{e}"));
        let clocks: Vec<(u16, Cycles)> = arrivals.iter().map(|(c, t)| (c.0, *t)).collect();
        let last = arrivals.iter().map(|a| a.1).max().unwrap();

        let mut bitmap = 0u64;
        let mut dead: Vec<u16> = Vec::new();
        for (i, (cpu, _)) in arrivals.iter().enumerate() {
            if m.is_cpu_dead(*cpu) {
                dead.push(cpu.0);
            } else if i < 64 {
                bitmap |= 1 << i;
            }
        }
        if !dead.is_empty() {
            if m.tracing() {
                m.trace(record(
                    last,
                    NO_CPU,
                    NO_NODE,
                    TraceEvent::Watchdog {
                        kind: StallKind::Barrier,
                    },
                ));
            }
            return Err(wd
                .trip(
                    StallKind::Barrier,
                    last,
                    format!("dead cpu(s) {dead:?} can never arrive at the barrier"),
                )
                .with_arrival_bitmap(bitmap)
                .with_cpu_clocks(clocks));
        }

        let first = arrivals.iter().map(|a| a.1).min().unwrap();
        let spread = last - first;
        if wd.expired(spread) {
            let mut on_time = 0u64;
            for (i, (_, t)) in arrivals.iter().enumerate() {
                if t - first <= wd.deadline() && i < 64 {
                    on_time |= 1 << i;
                }
            }
            if m.tracing() {
                m.trace(record(
                    last,
                    NO_CPU,
                    NO_NODE,
                    TraceEvent::Watchdog {
                        kind: StallKind::Barrier,
                    },
                ));
            }
            return Err(wd
                .trip(
                    StallKind::Barrier,
                    spread,
                    "barrier arrival spread exceeded the deadline",
                )
                .with_arrival_bitmap(on_time)
                .with_cpu_clocks(clocks));
        }

        Ok(self.simulate_inner(m, cost, arrivals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::{cycles_to_us, Machine};

    fn setup(nodes: usize) -> (Machine, SimBarrier, RuntimeCostModel) {
        let mut m = Machine::spp1000(nodes);
        let b = SimBarrier::new(&mut m, NodeId(0));
        (m, b, RuntimeCostModel::spp1000())
    }

    /// Arrivals spaced 1 us apart (the "minimum observed" protocol of
    /// §4.2: the last thread finds the semaphore free).
    fn spaced(cpus: &[u16]) -> Vec<(CpuId, Cycles)> {
        cpus.iter()
            .enumerate()
            .map(|(i, c)| (CpuId(*c), i as u64 * 100))
            .collect()
    }

    #[test]
    fn single_node_lifo_is_about_3_5_us() {
        let (mut m, b, cost) = setup(1);
        let r = b.simulate(&mut m, &cost, &spaced(&[0, 1, 2, 3, 4, 5, 6, 7]));
        let lifo = cycles_to_us(r.lifo());
        assert!((2.5..=4.5).contains(&lifo), "lifo = {lifo} us");
    }

    #[test]
    fn release_costs_about_2us_per_thread_on_one_node() {
        let (mut m, b, cost) = setup(1);
        let r4 = b.simulate(&mut m, &cost, &spaced(&[0, 1, 2, 3]));
        let r8 = b.simulate(&mut m, &cost, &spaced(&[0, 1, 2, 3, 4, 5, 6, 7]));
        let slope = cycles_to_us(r8.lilo() - r4.lilo()) / 4.0;
        assert!((1.5..=2.5).contains(&slope), "slope = {slope} us/thread");
    }

    #[test]
    fn second_hypernode_adds_about_1us_to_lifo() {
        let (mut m1, b1, cost) = setup(1);
        let r_local = b1.simulate(&mut m1, &cost, &spaced(&[0, 1, 2, 3, 4, 5, 6, 7]));
        let (mut m2, b2, cost) = setup(2);
        let r_cross = b2.simulate(&mut m2, &cost, &spaced(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]));
        let delta = cycles_to_us(r_cross.lifo()) - cycles_to_us(r_local.lifo());
        assert!(
            (0.3..=3.0).contains(&delta),
            "cross-node lifo penalty = {delta} us"
        );
    }

    #[test]
    fn lilo_never_below_lifo() {
        let (mut m, b, cost) = setup(2);
        for n in 1..=16u16 {
            let cpus: Vec<u16> = (0..n).collect();
            let r = b.simulate(&mut m, &cost, &spaced(&cpus));
            assert!(r.lilo() >= r.lifo(), "n = {n}");
        }
    }

    #[test]
    fn single_thread_barrier_is_cheap() {
        let (mut m, b, cost) = setup(1);
        let r = b.simulate(&mut m, &cost, &[(CpuId(0), 500)]);
        assert_eq!(r.release.len(), 1);
        assert!(cycles_to_us(r.lifo()) < 3.0);
    }

    #[test]
    fn all_threads_release_after_last_arrival() {
        let (mut m, b, cost) = setup(2);
        let arr = spaced(&[0, 8, 1, 9, 2, 10]);
        let r = b.simulate(&mut m, &cost, &arr);
        for (i, t) in r.release.iter().enumerate() {
            assert!(*t > r.last_arrival, "thread {i} released before last-in");
        }
    }

    #[test]
    fn reuse_behaves_consistently() {
        // Re-running a barrier re-invalidates and re-fetches; timings
        // should be stable from the second episode on.
        let (mut m, b, cost) = setup(1);
        let a = spaced(&[0, 1, 2, 3]);
        let r1 = b.simulate(&mut m, &cost, &a);
        let r2 = b.simulate(&mut m, &cost, &a);
        let r3 = b.simulate(&mut m, &cost, &a);
        assert_eq!(r2.lilo(), r3.lilo());
        let _ = r1;
    }

    #[test]
    fn watched_barrier_matches_plain_when_healthy() {
        let (mut m, b, cost) = setup(1);
        let arr = spaced(&[0, 1, 2, 3]);
        let plain = b.simulate(&mut m, &cost, &arr);
        m.flush_all_caches();
        let watched = b
            .simulate_watched(&mut m, &cost, &arr, &Watchdog::new(1_000_000))
            .expect("healthy barrier must not trip");
        assert_eq!(watched.release, plain.release);
        assert_eq!(watched.last_arrival, plain.last_arrival);
    }

    #[test]
    fn watched_barrier_trips_on_dead_participant() {
        use spp_core::FaultPlan;
        let mut m = Machine::spp1000(1).with_faults(FaultPlan::new(3).with_cpu_failure(2, 0));
        let b = SimBarrier::new(&mut m, NodeId(0));
        let cost = RuntimeCostModel::spp1000();
        // Fire the scheduled failure: the first access applies all due
        // hard faults.
        let scratch = m.alloc(spp_core::MemClass::NearShared { node: NodeId(0) }, 64);
        let _ = m.read(CpuId(0), scratch.base);
        assert!(m.is_cpu_dead(CpuId(2)));
        let rep = b
            .simulate_watched(
                &mut m,
                &cost,
                &spaced(&[0, 1, 2, 3]),
                &Watchdog::new(1_000_000),
            )
            .expect_err("dead participant must trip");
        assert_eq!(rep.kind, spp_core::StallKind::Barrier);
        // Participant index 2 (cpu 2) missing from the arrival bitmap.
        assert_eq!(rep.arrival_bitmap, Some(0b1011));
        assert!(rep.to_string().contains("dead cpu(s) [2]"), "{rep}");
        assert_eq!(rep.cpu_clocks.len(), 4);
    }

    #[test]
    fn watched_barrier_trips_on_arrival_spread() {
        let (mut m, b, cost) = setup(1);
        let arrivals = vec![(CpuId(0), 0), (CpuId(1), 100), (CpuId(2), 50_000)];
        let rep = b
            .simulate_watched(&mut m, &cost, &arrivals, &Watchdog::new(10_000))
            .expect_err("straggler must trip");
        assert_eq!(rep.kind, spp_core::StallKind::Barrier);
        assert_eq!(rep.observed, 50_000);
        // Threads 0 and 1 made the deadline; the straggler did not.
        assert_eq!(rep.arrival_bitmap, Some(0b011));
    }

    #[test]
    fn empty_episode_is_a_typed_error() {
        let (mut m, b, cost) = setup(1);
        assert_eq!(
            b.try_simulate(&mut m, &cost, &[]).unwrap_err(),
            SimError::EmptyBarrier
        );
    }

    #[test]
    fn wrong_participant_count_is_a_typed_error() {
        let (mut m, b, cost) = setup(1);
        let b = b.with_expected(4);
        let err = b
            .try_simulate(&mut m, &cost, &spaced(&[0, 1, 2]))
            .unwrap_err();
        assert_eq!(
            err,
            SimError::BarrierParticipants {
                expected: 4,
                got: 3
            }
        );
        // The full team passes and prices normally.
        let r = b
            .try_simulate(&mut m, &cost, &spaced(&[0, 1, 2, 3]))
            .unwrap();
        assert_eq!(r.release.len(), 4);
    }

    #[test]
    #[should_panic(expected = "barrier with no participants")]
    fn panicking_wrapper_preserves_the_historical_message() {
        let (mut m, b, cost) = setup(1);
        b.simulate(&mut m, &cost, &[]);
    }

    #[test]
    #[should_panic(expected = "expects 8 participants")]
    fn watched_variant_also_rejects_wrong_counts() {
        let (mut m, b, cost) = setup(1);
        let b = b.with_expected(8);
        let _ = b.simulate_watched(&mut m, &cost, &spaced(&[0, 1]), &Watchdog::new(1_000_000));
    }

    #[test]
    fn uniform_distribution_slower_than_high_locality() {
        let (mut m, b, cost) = setup(2);
        // 8 threads all on node 0 vs 4+4 across both nodes.
        let local = b.simulate(&mut m, &cost, &spaced(&[0, 1, 2, 3, 4, 5, 6, 7]));
        m.flush_all_caches();
        let split = b.simulate(&mut m, &cost, &spaced(&[0, 8, 1, 9, 2, 10, 3, 11]));
        assert!(
            split.lilo() > local.lilo(),
            "cross-node barrier should cost more: {} vs {}",
            split.lilo(),
            local.lilo()
        );
    }
}
