//! Fork-join execution of simulated thread teams.
//!
//! A parallel region runs each simulated thread's body *sequentially*
//! (deterministic trace interleaving, DESIGN.md §2) while per-thread
//! clocks advance independently; the region's elapsed time is
//!
//! ```text
//! fork (serial spawns) -> max over threads(start + busy) -> join barrier
//! ```
//!
//! Spawn costs and the join barrier reproduce the paper's Figure 2;
//! the join barrier is the full protocol simulation of Figure 3.

use crate::barrier::{BarrierResult, SimBarrier};
use crate::cost::RuntimeCostModel;
use crate::noise::OsNoise;
use crate::team::{chunk_range, Placement, Team};
use spp_core::trace::{record, TraceEvent, NO_CPU, NO_NODE};
use spp_core::{
    CpuId, Cycles, Machine, MemPort, MemStats, NodeId, RaceEvent, SimArray, SimError, StallKind,
    Watchdog, WatchdogReport,
};

/// The order in which a region's thread bodies are replayed.
///
/// The simulator executes bodies *sequentially* (deterministic trace
/// interleaving, DESIGN.md §2), and a correct data-parallel program's
/// results must not depend on that order. This policy makes the order
/// pluggable so the schedule-permutation fuzzer (`repro-race` in
/// spp-bench) can sweep it: [`SchedulePolicy::Identity`] — the default
/// — replays tids in `0..n` order and is bit-identical to the
/// historical behavior; the other variants permute the replay while
/// leaving every per-thread cost model untouched.
///
/// Caveat: under an *active fault plan*, permuting the replay order
/// legitimately changes outcomes — soft-fault draws (e.g. ring
/// stalls) come from one per-site stream shared by all CPUs, so
/// reordering accesses reassigns which of them stall. Schedule
/// fuzzing is therefore only meaningful on fault-free machines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// tid order `0..n` — the historical, calibrated order.
    #[default]
    Identity,
    /// Reverse tid order `n-1..=0`.
    Reversed,
    /// A seeded Fisher-Yates shuffle of the tid order (splitmix64).
    Shuffled {
        /// The shuffle seed; equal seeds give equal orders.
        seed: u64,
    },
    /// An explicit replay order, e.g. from a shrunk fuzzer artifact.
    /// Used verbatim when it is a permutation of `0..n`; teams of any
    /// other size fall back to identity order.
    Explicit(Vec<usize>),
}

impl SchedulePolicy {
    /// The replay order for a team of `n` bodies — always a
    /// permutation of `0..n`.
    pub fn order(&self, n: usize) -> Vec<usize> {
        match self {
            SchedulePolicy::Identity => (0..n).collect(),
            SchedulePolicy::Reversed => (0..n).rev().collect(),
            SchedulePolicy::Shuffled { seed } => {
                let mut order: Vec<usize> = (0..n).collect();
                let mut state = *seed;
                let mut next = move || {
                    // splitmix64: the repo's standard seedable stream.
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^ (z >> 31)
                };
                for i in (1..n).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    order.swap(i, j);
                }
                order
            }
            SchedulePolicy::Explicit(o) => {
                if o.len() == n {
                    let mut seen = vec![false; n];
                    let valid = o
                        .iter()
                        .all(|&t| t < n && !std::mem::replace(&mut seen[t], true));
                    if valid {
                        return o.clone();
                    }
                }
                (0..n).collect()
            }
        }
    }
}

/// Execution context handed to each simulated thread's body.
///
/// Generic over the memory backend; defaults to the cycle-accurate
/// [`Machine`] so existing `ThreadCtx<'_>` call sites are unchanged.
pub struct ThreadCtx<'a, P: MemPort = Machine> {
    /// This thread's index within the team (0 = parent).
    pub tid: usize,
    /// Team size.
    pub nthreads: usize,
    /// The CPU this thread runs on.
    pub cpu: CpuId,
    /// Locality-aligned chunk index (see [`Team::chunk_rank`]).
    pub rank: usize,
    machine: &'a mut P,
    cost: &'a RuntimeCostModel,
    clock: Cycles,
    flops: u64,
    batching: bool,
    /// Semaphore addresses of the gates this thread currently holds
    /// (innermost last) — [`crate::SimGate`] uses it to reject
    /// self-deadlocking re-entry with a typed error.
    pub(crate) gates: Vec<u64>,
}

impl<'a, P: MemPort> ThreadCtx<'a, P> {
    /// Priced read of `a[i]`.
    #[inline]
    pub fn read<T: Copy>(&mut self, a: &SimArray<T>, i: usize) -> T {
        let (v, c) = a.read(self.machine, self.cpu, i);
        self.clock += c;
        v
    }

    /// Priced write of `a[i] = v`.
    #[inline]
    pub fn write<T: Copy>(&mut self, a: &mut SimArray<T>, i: usize, v: T) {
        let c = a.write(self.machine, self.cpu, i, v);
        self.clock += c;
    }

    /// Priced read-modify-write: `a[i] = f(a[i])`.
    #[inline]
    pub fn update<T: Copy>(&mut self, a: &mut SimArray<T>, i: usize, f: impl FnOnce(T) -> T) {
        let v = self.read(a, i);
        self.write(a, i, f(v));
    }

    /// Priced streaming read of `a[range]`, appended to `out`. With
    /// batching enabled (the default) this is one port run; otherwise
    /// it degrades to elementwise [`ThreadCtx::read`]s. Both paths are
    /// cycle- and stats-identical by the port run-equivalence
    /// invariant — the cross-validation tests hold them to it.
    pub fn read_run<T: Copy>(
        &mut self,
        a: &SimArray<T>,
        range: std::ops::Range<usize>,
        out: &mut Vec<T>,
    ) {
        if self.batching {
            let c = a.read_run(self.machine, self.cpu, range, out);
            self.clock += c;
        } else {
            for i in range {
                out.push(self.read(a, i));
            }
        }
    }

    /// Priced streaming write of `vals` into `a[start..]`. Batched to
    /// one port run when batching is enabled; elementwise otherwise.
    pub fn write_run<T: Copy>(&mut self, a: &mut SimArray<T>, start: usize, vals: &[T]) {
        if self.batching {
            let c = a.write_run(self.machine, self.cpu, start, vals);
            self.clock += c;
        } else {
            for (k, v) in vals.iter().enumerate() {
                self.write(a, start + k, *v);
            }
        }
    }

    /// Priced streaming fill of `a[range]` with `v`. Batched to one
    /// port run when batching is enabled; elementwise otherwise.
    pub fn fill_run<T: Copy>(&mut self, a: &mut SimArray<T>, range: std::ops::Range<usize>, v: T) {
        if self.batching {
            let c = a.fill_run(self.machine, self.cpu, range, v);
            self.clock += c;
        } else {
            for i in range {
                self.write(a, i, v);
            }
        }
    }

    /// Account for `n` floating-point operations of register-resident
    /// compute.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.flops += n;
        self.clock += self.cost.flop_cycles(n);
    }

    /// Account for `n` cycles of non-FP work (integer, branches,
    /// address arithmetic beyond what `flops` folds in).
    #[inline]
    pub fn cycles(&mut self, n: Cycles) {
        self.clock += n;
    }

    /// This thread's simulated clock (cycles of busy time so far).
    pub fn clock(&self) -> Cycles {
        self.clock
    }

    /// FLOPs counted so far.
    pub fn flop_count(&self) -> u64 {
        self.flops
    }

    /// The contiguous chunk of `0..n` this thread owns under static,
    /// locality-aligned scheduling (chunk indices follow
    /// [`Team::chunk_rank`], so chunks line up with block-shared data
    /// placement).
    pub fn chunk(&self, n: usize) -> std::ops::Range<usize> {
        chunk_range(n, self.nthreads, self.rank)
    }

    /// Escape hatch to the memory port (e.g. uncached semaphore ops).
    pub fn machine(&mut self) -> &mut P {
        self.machine
    }

    /// Run `body` with its accesses marked as targeting the logical
    /// *back buffer* of a double-buffered structure whose pricing
    /// aliases both buffers onto one address range (the N-body
    /// permutation sort prices its scatter this way). The annotation
    /// only informs a mounted race detector — with detection off it is
    /// a single dead branch and cycles/stats are untouched.
    pub fn back_buffer<R>(&mut self, body: impl FnOnce(&mut Self) -> R) -> R {
        let racing = self.machine.racing();
        if racing {
            self.machine.race(RaceEvent::AliasBegin);
        }
        let r = body(self);
        if racing {
            self.machine.race(RaceEvent::AliasEnd);
        }
        r
    }

    /// The runtime cost model in force.
    pub fn cost_model(&self) -> &RuntimeCostModel {
        self.cost
    }

    /// Build a context outside any team — used by other execution
    /// layers (PVM tasks) that price compute through the same machine.
    /// The clock starts at zero; read it back with [`ThreadCtx::clock`].
    pub fn detached(machine: &'a mut P, cost: &'a RuntimeCostModel, cpu: CpuId) -> Self {
        ThreadCtx {
            tid: 0,
            nthreads: 1,
            cpu,
            rank: 0,
            machine,
            cost,
            clock: 0,
            flops: 0,
            batching: true,
            gates: Vec::new(),
        }
    }
}

/// Timing report for one parallel region.
#[derive(Debug, Clone)]
pub struct RegionReport {
    /// Total elapsed simulated cycles, fork through join.
    pub elapsed: Cycles,
    /// When each thread began executing its body (spawn skew).
    pub start: Vec<Cycles>,
    /// Pure compute/memory busy time per thread.
    pub busy: Vec<Cycles>,
    /// The join barrier's timing.
    pub join: BarrierResult,
    /// FLOPs summed over the team.
    pub flops: u64,
    /// Spawn retries paid during the fork (fault injection; zero
    /// without an active fault plan).
    pub spawn_retries: u64,
}

impl RegionReport {
    /// Elapsed time in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        spp_core::cycles_to_us(self.elapsed)
    }

    /// Mflop/s over the region.
    pub fn mflops(&self) -> f64 {
        if self.elapsed == 0 {
            0.0
        } else {
            // One cycle is 10 ns = 1e-8 s.
            self.flops as f64 / (self.elapsed as f64 * 1e-8) / 1e6
        }
    }
}

/// Handle to a set of asynchronous threads in flight (their bodies
/// have been replayed; the simulated completion times are recorded).
#[derive(Debug, Clone)]
pub struct AsyncHandle {
    /// Completion time of each child, measured from the fork instant.
    pub finish: Vec<Cycles>,
    /// Busy time of each child.
    pub busy: Vec<Cycles>,
    /// FLOPs over all children.
    pub flops: u64,
    /// Spawn retries paid during the fork (fault injection; zero
    /// without an active fault plan).
    pub spawn_retries: u64,
}

/// The threaded runtime: a machine plus thread-management costs.
///
/// Generic over the memory backend; defaults to the cycle-accurate
/// [`Machine`] so plain `Runtime` keeps meaning what it always did.
pub struct Runtime<P: MemPort = Machine> {
    /// The simulated machine (any [`MemPort`] backend).
    pub machine: P,
    /// Thread-management cost constants.
    pub cost: RuntimeCostModel,
    join_barrier: SimBarrier,
    /// Running total of simulated time across regions and serial
    /// sections (advanced by [`Runtime::fork_join`] and
    /// [`Runtime::serial`]).
    pub now: Cycles,
    /// Optional multitasking-interference model (§6 of the paper).
    /// `None` (the default) keeps all measurements noise-free.
    pub noise: Option<OsNoise>,
    /// Whether [`ThreadCtx`] run helpers use the batched port fast
    /// path (`true`, the default) or expand to scalar accesses.
    /// Cycle totals are identical either way; the scalar mode exists
    /// so cross-validation tests can prove it.
    pub batching: bool,
    /// Replay order for thread bodies within each region. The default
    /// [`SchedulePolicy::Identity`] is bit-identical to the historical
    /// behavior; other policies drive the schedule-permutation fuzzer.
    pub schedule: SchedulePolicy,
    regions: u64,
    /// Barrier used between the phases of
    /// [`Runtime::team_fork_join_phases`]; allocated on first use so
    /// non-phased workloads see no extra simulated allocations.
    phase_barrier: Option<SimBarrier>,
}

impl Runtime {
    /// The paper's testbed with `hypernodes` hypernodes.
    pub fn spp1000(hypernodes: usize) -> Self {
        Self::new(Machine::spp1000(hypernodes))
    }
}

impl<P: MemPort> Runtime<P> {
    /// Wrap a memory backend with the standard runtime cost model.
    pub fn new(mut machine: P) -> Self {
        let join_barrier = SimBarrier::new(&mut machine, NodeId(0));
        Runtime {
            machine,
            cost: RuntimeCostModel::spp1000(),
            join_barrier,
            now: 0,
            noise: None,
            batching: true,
            schedule: SchedulePolicy::Identity,
            regions: 0,
            phase_barrier: None,
        }
    }

    /// Set the replay order for subsequent regions' thread bodies.
    pub fn with_schedule(mut self, schedule: SchedulePolicy) -> Self {
        self.schedule = schedule;
        self
    }

    /// Enable the OS-multitasking noise model for subsequent regions.
    pub fn with_noise(mut self, noise: OsNoise) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Disable (or re-enable) the batched run fast path in thread
    /// contexts; used by cross-validation tests.
    pub fn with_batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    /// Price one thread spawn, retrying with exponential backoff when
    /// the machine's fault plan fails it. Panics with
    /// [`SimError::SpawnFailed`] once `spawn_max_attempts` is
    /// exhausted (consecutive failures signal a broken node, not a
    /// transient).
    fn priced_spawn(
        &mut self,
        cpu: CpuId,
        same_node: bool,
        activated: &mut bool,
        retries: &mut u64,
    ) -> Cycles {
        self.try_priced_spawn(cpu, same_node, activated, retries)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible core of [`Runtime::priced_spawn`]: returns
    /// [`SimError::SpawnFailed`] instead of panicking when the retry
    /// budget is exhausted, so watched fork paths can turn a livelocked
    /// spawn loop into a [`WatchdogReport`].
    fn try_priced_spawn(
        &mut self,
        cpu: CpuId,
        same_node: bool,
        activated: &mut bool,
        retries: &mut u64,
    ) -> Result<Cycles, SimError> {
        let mut t = 0;
        if !same_node && !*activated {
            t += self.cost.node_activation;
            *activated = true;
        }
        let spawn = if same_node {
            self.cost.spawn_local
        } else {
            self.cost.spawn_remote
        };
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            t += spawn;
            let failed = self
                .machine
                .faults_mut()
                .map(|f| f.spawn_fails())
                .unwrap_or(false);
            if !failed {
                return Ok(t);
            }
            *retries += 1;
            if attempts >= self.cost.spawn_max_attempts {
                return Err(SimError::SpawnFailed {
                    cpu: cpu.0,
                    attempts,
                });
            }
            t += spp_core::retry_backoff(self.cost.spawn_retry_backoff, attempts - 1);
        }
    }

    /// Run a parallel region over a freshly placed team.
    pub fn fork_join(
        &mut self,
        n: usize,
        placement: &Placement,
        body: impl FnMut(&mut ThreadCtx<P>),
    ) -> RegionReport {
        let team = Team::place(self.machine.config(), n, placement);
        self.team_fork_join(&team, body)
    }

    /// Run a parallel region over an existing team.
    pub fn team_fork_join(
        &mut self,
        team: &Team,
        mut body: impl FnMut(&mut ThreadCtx<P>),
    ) -> RegionReport {
        match self.team_fork_join_impl(team, &mut body, None) {
            Ok(r) => r,
            Err(rep) => unreachable!("watchdog trip without a watchdog: {rep}"),
        }
    }

    /// Watched variant of [`Runtime::fork_join`]: places the team and
    /// delegates to [`Runtime::watched_team_fork_join`].
    pub fn watched_fork_join(
        &mut self,
        n: usize,
        placement: &Placement,
        wd: &Watchdog,
        body: impl FnMut(&mut ThreadCtx<P>),
    ) -> Result<RegionReport, WatchdogReport> {
        let team = Team::place(self.machine.config(), n, placement);
        self.watched_team_fork_join(&team, wd, body)
    }

    /// Watched variant of [`Runtime::team_fork_join`]: detects regions
    /// that can never complete instead of hanging or panicking.
    ///
    /// Trips with a [`WatchdogReport`] when
    ///
    /// * a team CPU is already dead under the machine's hard-fault
    ///   model (its thread would never reach the join barrier),
    /// * a spawn exhausts its retry budget (a livelocked retry loop —
    ///   the report's detail carries the [`SimError::SpawnFailed`]
    ///   message), or
    /// * the join barrier trips (a CPU died mid-region, or the arrival
    ///   spread exceeded the deadline — see
    ///   [`SimBarrier::simulate_watched`]).
    pub fn watched_team_fork_join(
        &mut self,
        team: &Team,
        wd: &Watchdog,
        mut body: impl FnMut(&mut ThreadCtx<P>),
    ) -> Result<RegionReport, WatchdogReport> {
        self.team_fork_join_impl(team, &mut body, Some(wd))
    }

    fn team_fork_join_impl(
        &mut self,
        team: &Team,
        body: &mut dyn FnMut(&mut ThreadCtx<P>),
        wd: Option<&Watchdog>,
    ) -> Result<RegionReport, WatchdogReport> {
        let n = team.len();

        // With a watchdog installed, refuse to fork onto dead CPUs:
        // their threads would never arrive at the join barrier.
        if let Some(w) = wd {
            let mut alive = 0u64;
            let mut dead: Vec<u16> = Vec::new();
            for (i, cpu) in team.cpus().iter().enumerate() {
                if self.machine.is_cpu_dead(*cpu) {
                    dead.push(cpu.0);
                } else if i < 64 {
                    alive |= 1 << i;
                }
            }
            if !dead.is_empty() {
                if self.machine.tracing() {
                    self.machine.trace(record(
                        self.now,
                        NO_CPU,
                        NO_NODE,
                        TraceEvent::Watchdog {
                            kind: StallKind::Barrier,
                        },
                    ));
                }
                return Err(w
                    .trip(
                        StallKind::Barrier,
                        0,
                        format!("team cpu(s) {dead:?} are dead; the join can never complete"),
                    )
                    .with_arrival_bitmap(alive)
                    .with_cpu_clocks(team.cpus().iter().map(|c| (c.0, 0)).collect()));
            }
        }
        let parent_node = self.machine.config().node_of_cpu(team.cpu(0));

        // Fork: the parent issues spawns serially; the first spawn on
        // a foreign hypernode pays the cross-kernel activation.
        let mut t = self.cost.fork_base;
        let mut start = vec![0u64; n];
        let mut activated = false;
        let mut spawn_retries = 0u64;
        for (tid, s) in start.iter_mut().enumerate().skip(1) {
            let node = self.machine.config().node_of_cpu(team.cpu(tid));
            let spawn = self.try_priced_spawn(
                team.cpu(tid),
                node == parent_node,
                &mut activated,
                &mut spawn_retries,
            );
            match spawn {
                Ok(c) => t += c,
                Err(e) => match wd {
                    Some(w) => {
                        if self.machine.tracing() {
                            self.machine.trace(record(
                                self.now + t,
                                NO_CPU,
                                NO_NODE,
                                TraceEvent::Watchdog {
                                    kind: StallKind::RetryLoop,
                                },
                            ));
                        }
                        return Err(w
                            .trip(StallKind::RetryLoop, t, e.to_string())
                            .with_cpu_clocks(team.cpus().iter().map(|c| (c.0, 0)).collect()));
                    }
                    None => panic!("{e}"),
                },
            }
            *s = t;
        }
        // The parent begins its own chunk after issuing all spawns.
        start[0] = t;

        // Execute bodies sequentially, one per simulated thread, in
        // the schedule policy's replay order (identity by default —
        // a correct program's results don't depend on the order, and
        // the race fuzzer sweeps it to prove that).
        let mut busy = vec![0u64; n];
        let mut flops = 0u64;
        let racing = self.machine.racing();
        if racing {
            self.machine.race(RaceEvent::RegionBegin);
        }
        for tid in self.schedule.order(n) {
            let cpu = team.cpu(tid);
            if racing {
                self.machine.race(RaceEvent::BodyBegin {
                    tid: tid as u32,
                    cpu: cpu.0,
                });
            }
            let mut ctx = ThreadCtx {
                tid,
                nthreads: n,
                cpu,
                rank: team.chunk_rank(tid),
                machine: &mut self.machine,
                cost: &self.cost,
                clock: 0,
                flops: 0,
                batching: self.batching,
                gates: Vec::new(),
            };
            body(&mut ctx);
            busy[tid] = ctx.clock;
            flops += ctx.flops;
            if racing {
                self.machine.race(RaceEvent::BodyEnd);
            }
        }
        if racing {
            self.machine.race(RaceEvent::RegionEnd);
        }

        // Optional multitasking interference (§6): the OS steals
        // quanta from every thread, plus a full timeslice from one
        // victim when the team occupies the whole machine.
        self.regions += 1;
        if let Some(noise) = &self.noise {
            let full = n == self.machine.config().num_cpus();
            for (tid, b) in busy.iter_mut().enumerate() {
                *b += noise.stolen(self.regions, tid, n, *b, full);
            }
        }

        // Join: a barrier whose arrivals are the thread finish times.
        let arrivals: Vec<(CpuId, Cycles)> = (0..n)
            .map(|tid| (team.cpu(tid), start[tid] + busy[tid]))
            .collect();
        let join = if n == 1 {
            BarrierResult {
                release: vec![arrivals[0].1],
                last_arrival: arrivals[0].1,
            }
        } else {
            match wd {
                Some(w) => self.join_barrier.simulate_watched(
                    &mut self.machine,
                    &self.cost,
                    &arrivals,
                    w,
                )?,
                None => self
                    .join_barrier
                    .simulate(&mut self.machine, &self.cost, &arrivals),
            }
        };
        let elapsed = join.end() + self.cost.join_base;
        if self.machine.tracing() {
            let parent = team.cpu(0);
            self.machine.trace(record(
                self.now,
                parent.0,
                parent_node.0,
                TraceEvent::ForkSpan {
                    threads: n as u16,
                    dur: elapsed,
                },
            ));
        }
        self.now += elapsed;
        Ok(RegionReport {
            elapsed,
            start,
            busy,
            join,
            flops,
            spawn_retries,
        })
    }

    /// Run a *phased* (bulk-synchronous) parallel region: `nphases`
    /// phases over an existing team, with a full in-region barrier
    /// simulation between consecutive phases. The body receives the
    /// phase index; per-thread clocks carry across phases, and after
    /// each barrier a thread resumes at its simulated release time.
    ///
    /// Apps use this to *order* work that would otherwise conflict —
    /// colored FEM assembly runs one color per phase, PIC separates
    /// private charge deposit from the cross-thread reduction — and
    /// the race detector honors the ordering through its phase
    /// counter (accesses in different phases never race).
    pub fn team_fork_join_phases(
        &mut self,
        team: &Team,
        nphases: usize,
        mut body: impl FnMut(&mut ThreadCtx<P>, usize),
    ) -> RegionReport {
        let n = team.len();
        let parent_node = self.machine.config().node_of_cpu(team.cpu(0));

        // Fork: identical to team_fork_join.
        let mut t = self.cost.fork_base;
        let mut start = vec![0u64; n];
        let mut activated = false;
        let mut spawn_retries = 0u64;
        for (tid, s) in start.iter_mut().enumerate().skip(1) {
            let node = self.machine.config().node_of_cpu(team.cpu(tid));
            t += self.priced_spawn(
                team.cpu(tid),
                node == parent_node,
                &mut activated,
                &mut spawn_retries,
            );
            *s = t;
        }
        start[0] = t;

        let mut busy = vec![0u64; n];
        let mut flops = 0u64;
        let racing = self.machine.racing();
        if racing {
            self.machine.race(RaceEvent::RegionBegin);
        }
        for phase in 0..nphases {
            if phase > 0 {
                if n > 1 {
                    // In-region barrier: arrivals at each thread's
                    // current finish time; it resumes at its release.
                    let arrivals: Vec<(CpuId, Cycles)> = (0..n)
                        .map(|tid| (team.cpu(tid), start[tid] + busy[tid]))
                        .collect();
                    if self.phase_barrier.is_none() {
                        self.phase_barrier = Some(SimBarrier::new(&mut self.machine, parent_node));
                    }
                    let pb = self.phase_barrier.take().unwrap();
                    let res = pb.simulate(&mut self.machine, &self.cost, &arrivals);
                    self.phase_barrier = Some(pb);
                    for tid in 0..n {
                        busy[tid] = res.release[tid] - start[tid];
                    }
                }
                if racing {
                    self.machine.race(RaceEvent::PhaseBarrier);
                }
            }
            for tid in self.schedule.order(n) {
                let cpu = team.cpu(tid);
                if racing {
                    self.machine.race(RaceEvent::BodyBegin {
                        tid: tid as u32,
                        cpu: cpu.0,
                    });
                }
                let mut ctx = ThreadCtx {
                    tid,
                    nthreads: n,
                    cpu,
                    rank: team.chunk_rank(tid),
                    machine: &mut self.machine,
                    cost: &self.cost,
                    clock: busy[tid],
                    flops: 0,
                    batching: self.batching,
                    gates: Vec::new(),
                };
                body(&mut ctx, phase);
                busy[tid] = ctx.clock;
                flops += ctx.flops;
                if racing {
                    self.machine.race(RaceEvent::BodyEnd);
                }
            }
        }
        if racing {
            self.machine.race(RaceEvent::RegionEnd);
        }

        self.regions += 1;
        if let Some(noise) = &self.noise {
            let full = n == self.machine.config().num_cpus();
            for (tid, b) in busy.iter_mut().enumerate() {
                *b += noise.stolen(self.regions, tid, n, *b, full);
            }
        }

        let arrivals: Vec<(CpuId, Cycles)> = (0..n)
            .map(|tid| (team.cpu(tid), start[tid] + busy[tid]))
            .collect();
        let join = if n == 1 {
            BarrierResult {
                release: vec![arrivals[0].1],
                last_arrival: arrivals[0].1,
            }
        } else {
            self.join_barrier
                .simulate(&mut self.machine, &self.cost, &arrivals)
        };
        let elapsed = join.end() + self.cost.join_base;
        if self.machine.tracing() {
            let parent = team.cpu(0);
            self.machine.trace(record(
                self.now,
                parent.0,
                parent_node.0,
                TraceEvent::ForkSpan {
                    threads: n as u16,
                    dur: elapsed,
                },
            ));
        }
        self.now += elapsed;
        RegionReport {
            elapsed,
            start,
            busy,
            join,
            flops,
            spawn_retries,
        }
    }

    /// Place a team and run a phased region over it — the
    /// [`Runtime::fork_join`] convenience for
    /// [`Runtime::team_fork_join_phases`].
    pub fn fork_join_phases(
        &mut self,
        n: usize,
        placement: &Placement,
        nphases: usize,
        body: impl FnMut(&mut ThreadCtx<P>, usize),
    ) -> RegionReport {
        let team = Team::place(self.machine.config(), n, placement);
        self.team_fork_join_phases(&team, nphases, body)
    }

    /// Spawn *asynchronous* threads (§3.2: "Asynchronous threads
    /// continue execution independent of one another; the parent
    /// thread continues to execute without waiting for its children to
    /// terminate"). The children's bodies are replayed immediately;
    /// the returned handle carries their completion times. The parent
    /// resumes at the returned clock (after issuing the spawns) and
    /// reclaims the children with [`Runtime::join_async`].
    pub fn fork_async(
        &mut self,
        team: &Team,
        mut body: impl FnMut(&mut ThreadCtx<P>),
    ) -> (Cycles, AsyncHandle) {
        let n = team.len();
        let parent_node = self.machine.config().node_of_cpu(team.cpu(0));
        // Children are tids 0..n of the handle; the parent is not part
        // of the team here. Spawns are priced first (they happen in
        // issue order regardless of replay order), then the bodies are
        // replayed in the schedule policy's order. With identity
        // scheduling this split is bit-identical to the historical
        // interleaved loop: spawn draws and body accesses come from
        // different per-site fault streams.
        let mut t = self.cost.fork_base;
        let mut spawn_done = vec![0u64; n];
        let mut finish = vec![0u64; n];
        let mut busy = vec![0u64; n];
        let mut activated = false;
        let mut flops = 0u64;
        let mut spawn_retries = 0u64;
        for (tid, s) in spawn_done.iter_mut().enumerate() {
            let node = self.machine.config().node_of_cpu(team.cpu(tid));
            t += self.priced_spawn(
                team.cpu(tid),
                node == parent_node,
                &mut activated,
                &mut spawn_retries,
            );
            *s = t;
        }
        let racing = self.machine.racing();
        if racing {
            self.machine.race(RaceEvent::RegionBegin);
        }
        for tid in self.schedule.order(n) {
            let cpu = team.cpu(tid);
            if racing {
                self.machine.race(RaceEvent::BodyBegin {
                    tid: tid as u32,
                    cpu: cpu.0,
                });
            }
            let mut ctx = ThreadCtx {
                tid,
                nthreads: n,
                cpu,
                rank: team.chunk_rank(tid),
                machine: &mut self.machine,
                cost: &self.cost,
                clock: 0,
                flops: 0,
                batching: self.batching,
                gates: Vec::new(),
            };
            body(&mut ctx);
            busy[tid] = ctx.clock;
            flops += ctx.flops;
            finish[tid] = spawn_done[tid] + ctx.clock;
            if racing {
                self.machine.race(RaceEvent::BodyEnd);
            }
        }
        if racing {
            self.machine.race(RaceEvent::RegionEnd);
        }
        self.regions += 1;
        if let Some(noise) = &self.noise {
            let full = n == self.machine.config().num_cpus();
            for tid in 0..n {
                let extra = noise.stolen(self.regions, tid, n, busy[tid], full);
                busy[tid] += extra;
                finish[tid] += extra;
            }
        }
        (
            t,
            AsyncHandle {
                finish,
                busy,
                flops,
                spawn_retries,
            },
        )
    }

    /// Wait for asynchronous children: given the parent's own clock
    /// (measured from the same fork instant), returns the time at
    /// which the join completes. Costs nothing beyond `join_base` if
    /// the children already finished.
    pub fn join_async(&mut self, handle: &AsyncHandle, parent_clock: Cycles) -> Cycles {
        let children = handle.finish.iter().copied().max().unwrap_or(0);
        let done = children.max(parent_clock) + self.cost.join_base;
        self.now += done;
        done
    }

    /// Run serial (single-thread) work on `cpu` with no fork/join
    /// overhead; returns its busy time and advances [`Runtime::now`].
    pub fn serial(&mut self, cpu: CpuId, body: impl FnOnce(&mut ThreadCtx<P>)) -> RegionReport {
        let mut ctx = ThreadCtx {
            tid: 0,
            nthreads: 1,
            cpu,
            rank: 0,
            machine: &mut self.machine,
            cost: &self.cost,
            clock: 0,
            flops: 0,
            batching: self.batching,
            gates: Vec::new(),
        };
        body(&mut ctx);
        let busy = ctx.clock;
        let flops = ctx.flops;
        self.now += busy;
        RegionReport {
            elapsed: busy,
            start: vec![0],
            busy: vec![busy],
            join: BarrierResult {
                release: vec![busy],
                last_arrival: busy,
            },
            flops,
            spawn_retries: 0,
        }
    }

    /// Total simulated time so far, microseconds.
    pub fn now_us(&self) -> f64 {
        spp_core::cycles_to_us(self.now)
    }
}

impl Runtime<Machine> {
    /// [`Runtime::team_fork_join_phases`] with barrier-interval
    /// critical-path profiling (see [`crate::interval`]): runs the
    /// phased region bit-identically to the unprofiled path — same
    /// cycles, same [`spp_core::MemStats`], same [`RegionReport`] —
    /// while snapshotting each thread's busy time and per-CPU counter
    /// deltas around every phase, and returns one
    /// [`IntervalReport`](crate::interval::IntervalReport) per barrier
    /// interval. Requires the cycle-accurate [`Machine`] backend for
    /// its per-CPU counter breakdown. When tracing is mounted, each
    /// interval also emits a [`TraceEvent::Straggler`] stamped at the
    /// straggler's arrival.
    pub fn team_fork_join_phases_profiled(
        &mut self,
        team: &Team,
        nphases: usize,
        mut body: impl FnMut(&mut ThreadCtx<Machine>, usize),
    ) -> (RegionReport, Vec<crate::interval::IntervalReport>) {
        use crate::interval::IntervalReport;
        let n = team.len();
        let parent_node = self.machine.config().node_of_cpu(team.cpu(0));
        let cpus: Vec<u16> = (0..n).map(|tid| team.cpu(tid).0).collect();

        // Fork: identical to team_fork_join_phases.
        let mut t = self.cost.fork_base;
        let mut start = vec![0u64; n];
        let mut activated = false;
        let mut spawn_retries = 0u64;
        for (tid, s) in start.iter_mut().enumerate().skip(1) {
            let node = self.machine.config().node_of_cpu(team.cpu(tid));
            t += self.priced_spawn(
                team.cpu(tid),
                node == parent_node,
                &mut activated,
                &mut spawn_retries,
            );
            *s = t;
        }
        start[0] = t;

        let mut busy = vec![0u64; n];
        let mut flops = 0u64;
        let racing = self.machine.racing();
        if racing {
            self.machine.race(RaceEvent::RegionBegin);
        }

        let mut intervals: Vec<IntervalReport> = Vec::with_capacity(nphases);
        // Busy values at the start of the open interval, plus the
        // per-CPU counter deltas over its bodies — held until the
        // closing barrier's release times are known.
        let mut open: Option<(Vec<Cycles>, Vec<MemStats>)> = None;
        for phase in 0..nphases {
            if phase > 0 {
                if n > 1 {
                    let arrivals: Vec<(CpuId, Cycles)> = (0..n)
                        .map(|tid| (team.cpu(tid), start[tid] + busy[tid]))
                        .collect();
                    if self.phase_barrier.is_none() {
                        self.phase_barrier = Some(SimBarrier::new(&mut self.machine, parent_node));
                    }
                    let pb = self.phase_barrier.take().unwrap();
                    let res = pb.simulate(&mut self.machine, &self.cost, &arrivals);
                    self.phase_barrier = Some(pb);
                    if let Some((entry, deltas)) = open.take() {
                        self.close_interval(
                            &mut intervals,
                            phase - 1,
                            &cpus,
                            &start,
                            &busy,
                            &entry,
                            res.release.clone(),
                            &deltas,
                        );
                    }
                    for tid in 0..n {
                        busy[tid] = res.release[tid] - start[tid];
                    }
                } else if let Some((entry, deltas)) = open.take() {
                    // Single thread: no barrier; release == arrival.
                    let release = vec![start[0] + busy[0]];
                    self.close_interval(
                        &mut intervals,
                        phase - 1,
                        &cpus,
                        &start,
                        &busy,
                        &entry,
                        release,
                        &deltas,
                    );
                }
                if racing {
                    self.machine.race(RaceEvent::PhaseBarrier);
                }
            }
            let before: Vec<MemStats> = (0..n)
                .map(|tid| *self.machine.cpu_stats(team.cpu(tid)))
                .collect();
            let entry = busy.clone();
            for tid in self.schedule.order(n) {
                let cpu = team.cpu(tid);
                if racing {
                    self.machine.race(RaceEvent::BodyBegin {
                        tid: tid as u32,
                        cpu: cpu.0,
                    });
                }
                let mut ctx = ThreadCtx {
                    tid,
                    nthreads: n,
                    cpu,
                    rank: team.chunk_rank(tid),
                    machine: &mut self.machine,
                    cost: &self.cost,
                    clock: busy[tid],
                    flops: 0,
                    batching: self.batching,
                    gates: Vec::new(),
                };
                body(&mut ctx, phase);
                busy[tid] = ctx.clock;
                flops += ctx.flops;
                if racing {
                    self.machine.race(RaceEvent::BodyEnd);
                }
            }
            let deltas: Vec<MemStats> = (0..n)
                .map(|tid| self.machine.cpu_stats(team.cpu(tid)).since(&before[tid]))
                .collect();
            open = Some((entry, deltas));
        }
        if racing {
            self.machine.race(RaceEvent::RegionEnd);
        }

        self.regions += 1;
        if let Some(noise) = &self.noise {
            let full = n == self.machine.config().num_cpus();
            for (tid, b) in busy.iter_mut().enumerate() {
                *b += noise.stolen(self.regions, tid, n, *b, full);
            }
        }

        let arrivals: Vec<(CpuId, Cycles)> = (0..n)
            .map(|tid| (team.cpu(tid), start[tid] + busy[tid]))
            .collect();
        let join = if n == 1 {
            BarrierResult {
                release: vec![arrivals[0].1],
                last_arrival: arrivals[0].1,
            }
        } else {
            self.join_barrier
                .simulate(&mut self.machine, &self.cost, &arrivals)
        };
        // The final interval closes at the join barrier. Noise steal
        // (applied above to total busy) lands in this interval, so the
        // per-interval busy columns always sum back to the report.
        if let Some((entry, deltas)) = open.take() {
            self.close_interval(
                &mut intervals,
                nphases - 1,
                &cpus,
                &start,
                &busy,
                &entry,
                join.release.clone(),
                &deltas,
            );
        }
        let elapsed = join.end() + self.cost.join_base;
        if self.machine.tracing() {
            let parent = team.cpu(0);
            self.machine.trace(record(
                self.now,
                parent.0,
                parent_node.0,
                TraceEvent::ForkSpan {
                    threads: n as u16,
                    dur: elapsed,
                },
            ));
        }
        self.now += elapsed;
        (
            RegionReport {
                elapsed,
                start,
                busy,
                join,
                flops,
                spawn_retries,
            },
            intervals,
        )
    }

    /// Finalize one barrier interval from its captured entry state and
    /// the closing barrier's release times; emits the straggler trace
    /// event when tracing is mounted.
    #[allow(clippy::too_many_arguments)]
    fn close_interval(
        &mut self,
        intervals: &mut Vec<crate::interval::IntervalReport>,
        index: usize,
        cpus: &[u16],
        start: &[Cycles],
        busy: &[Cycles],
        entry: &[Cycles],
        release: Vec<Cycles>,
        deltas: &[MemStats],
    ) {
        let n = cpus.len();
        let iv_busy: Vec<Cycles> = (0..n).map(|tid| busy[tid] - entry[tid]).collect();
        let arrival: Vec<Cycles> = (0..n).map(|tid| start[tid] + busy[tid]).collect();
        let iv = crate::interval::IntervalReport::from_timings(
            index,
            cpus.to_vec(),
            iv_busy,
            arrival,
            release,
            deltas,
        );
        if self.machine.tracing() {
            let cpu = iv.straggler_cpu();
            let node = self.machine.config().node_of_cpu(CpuId(cpu));
            self.machine.trace(record(
                self.now + iv.critical_arrival(),
                cpu,
                node.0,
                TraceEvent::Straggler {
                    stall: iv.straggler_held,
                },
            ));
        }
        intervals.push(iv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::{cycles_to_us, MemClass};

    #[test]
    fn empty_fork_join_cost_rises_with_threads() {
        let mut rt = Runtime::spp1000(2);
        let us = |n: usize, rt: &mut Runtime| {
            rt.fork_join(n, &Placement::HighLocality, |_| {})
                .elapsed_us()
        };
        let t2 = us(2, &mut rt);
        let t4 = us(4, &mut rt);
        let t8 = us(8, &mut rt);
        assert!(t2 < t4 && t4 < t8, "{t2} {t4} {t8}");
        // Paper anchor (§4.1, Fig. 2): ~10 µs per extra pair of local
        // threads. The 7..=18 window is intentionally tight around that
        // slope (the join barrier adds a sublinear term on top); loosen
        // only with a deliberate recalibration.
        let slope = (t8 - t2) / 3.0;
        assert!((7.0..=18.0).contains(&slope), "local slope = {slope}");
    }

    #[test]
    fn crossing_hypernodes_costs_about_50us_extra() {
        let mut rt = Runtime::spp1000(2);
        let t8 = rt
            .fork_join(8, &Placement::HighLocality, |_| {})
            .elapsed_us();
        let t10 = rt
            .fork_join(10, &Placement::HighLocality, |_| {})
            .elapsed_us();
        // Paper anchor (§4.1): "once threads start to be spawned on
        // two hypernodes" a one-time ~50 µs activation appears. Two
        // more threads cost ~20 µs remotely, so the observed jump is
        // activation + spawns; 40..=90 µs pins it intentionally tight.
        let jump = t10 - t8;
        assert!((40.0..=90.0).contains(&jump), "jump = {jump} us");
    }

    #[test]
    fn uniform_placement_costs_more_than_local() {
        let mut rt = Runtime::spp1000(2);
        let local = rt
            .fork_join(8, &Placement::HighLocality, |_| {})
            .elapsed_us();
        let mut rt2 = Runtime::spp1000(2);
        let uniform = rt2.fork_join(8, &Placement::Uniform, |_| {}).elapsed_us();
        assert!(uniform > local, "{uniform} vs {local}");
    }

    #[test]
    fn work_splits_across_threads() {
        let mut rt = Runtime::spp1000(1);
        let mut hits = [0usize; 4];
        rt.fork_join(4, &Placement::HighLocality, |ctx| {
            let r = ctx.chunk(100);
            hits[ctx.tid] = r.len();
        });
        assert_eq!(hits.iter().sum::<usize>(), 100);
        assert!(hits.iter().all(|h| *h == 25));
    }

    #[test]
    fn parallel_speedup_on_compute_bound_work() {
        // 1 ms of pure flops per thread-share: near-linear scaling.
        let work = 4_000_000u64; // flops
        let elapsed = |n: usize| {
            let mut rt = Runtime::spp1000(2);
            rt.fork_join(n, &Placement::HighLocality, |ctx| {
                let share = work / ctx.nthreads as u64;
                ctx.flops(share);
            })
            .elapsed
        };
        let t1 = elapsed(1);
        let t8 = elapsed(8);
        let speedup = t1 as f64 / t8 as f64;
        assert!(speedup > 6.5, "speedup = {speedup}");
    }

    #[test]
    fn region_counts_flops_and_mflops() {
        let mut rt = Runtime::spp1000(1);
        let r = rt.fork_join(2, &Placement::HighLocality, |ctx| {
            ctx.flops(1000);
        });
        assert_eq!(r.flops, 2000);
        assert!(r.mflops() > 0.0);
    }

    #[test]
    fn memory_traffic_advances_the_clock() {
        let mut rt = Runtime::spp1000(1);
        let mut arr = SimArray::<f64>::from_elem(
            &mut rt.machine,
            MemClass::NearShared { node: NodeId(0) },
            1024,
            0.0,
        );
        let r = rt.fork_join(2, &Placement::HighLocality, |ctx| {
            for i in ctx.chunk(1024) {
                ctx.write(&mut arr, i, i as f64);
            }
        });
        assert!(r.busy[0] > 0);
        assert_eq!(arr.host()[100], 100.0);
    }

    #[test]
    fn serial_section_has_no_fork_overhead() {
        let mut rt = Runtime::spp1000(1);
        let r = rt.serial(CpuId(0), |ctx| ctx.flops(100));
        assert_eq!(r.elapsed, rt.cost.flop_cycles(100));
    }

    #[test]
    fn now_accumulates_across_regions() {
        let mut rt = Runtime::spp1000(1);
        assert_eq!(rt.now, 0);
        let a = rt.fork_join(2, &Placement::HighLocality, |_| {}).elapsed;
        let b = rt.serial(CpuId(0), |ctx| ctx.flops(50)).elapsed;
        assert_eq!(rt.now, a + b);
        assert!(cycles_to_us(rt.now) > 0.0);
    }

    #[test]
    fn async_threads_overlap_with_the_parent() {
        // Parent does 1 ms of its own work while 4 async children do
        // 0.5 ms each: the join should complete at ~parent time, not
        // parent + children.
        let mut rt = Runtime::spp1000(1);
        let team = Team::place(
            rt.machine.config(),
            4,
            &Placement::Explicit(vec![CpuId(1), CpuId(2), CpuId(3), CpuId(4)]),
        );
        let (spawn_done, handle) = rt.fork_async(&team, |ctx| ctx.flops(25_000)); // 0.5 ms
        assert_eq!(handle.flops, 100_000);
        // The parent continues immediately after the spawns.
        assert!(spp_core::cycles_to_us(spawn_done) < 50.0);
        let parent_clock = spawn_done + rt.cost.flop_cycles(50_000); // 1 ms own work
        let done = rt.join_async(&handle, parent_clock);
        // Children finished well before the parent; join adds only its
        // base cost.
        assert!(done < parent_clock + rt.cost.join_base + 10);
        // Sequential execution would exceed parent + 4 x child.
        let sequential = parent_clock + 4 * rt.cost.flop_cycles(25_000);
        assert!(done < sequential);
    }

    #[test]
    fn join_async_waits_for_slow_children() {
        let mut rt = Runtime::spp1000(1);
        let team = Team::place(
            rt.machine.config(),
            2,
            &Placement::Explicit(vec![CpuId(1), CpuId(2)]),
        );
        let (_, handle) = rt.fork_async(&team, |ctx| ctx.flops(1_000_000));
        let slowest = *handle.finish.iter().max().unwrap();
        let done = rt.join_async(&handle, 100);
        assert_eq!(done, slowest + rt.cost.join_base);
    }

    #[test]
    fn os_noise_reproduces_the_16_on_16_problem() {
        // §6: codes needing all 16 processors shared them with the OS;
        // with the noise model on, a 16-thread region is hurt more
        // than a 15-thread one relative to the noise-free baseline.
        let work = 16 * 4_000_000u64; // ~40 ms per thread at 16 threads
        let elapsed = |threads: usize, noisy: bool| {
            let mut rt = Runtime::spp1000(2);
            if noisy {
                rt = rt.with_noise(crate::noise::OsNoise::unix90s(5));
            }
            let mut total = 0u64;
            for _ in 0..8 {
                total += rt
                    .fork_join(threads, &Placement::Uniform, |ctx| {
                        ctx.flops(work / ctx.nthreads as u64)
                    })
                    .elapsed;
            }
            total
        };
        let inflate16 = elapsed(16, true) as f64 / elapsed(16, false) as f64;
        let inflate15 = elapsed(15, true) as f64 / elapsed(15, false) as f64;
        assert!(
            inflate16 > inflate15 + 0.02,
            "16-thread inflation {inflate16:.3} should exceed 15-thread {inflate15:.3}"
        );
        assert!(inflate16 > 1.05, "noise too weak: {inflate16:.3}");
    }

    #[test]
    fn noise_runs_stay_deterministic() {
        let run = || {
            let mut rt = Runtime::spp1000(1).with_noise(crate::noise::OsNoise::unix90s(9));
            rt.fork_join(8, &Placement::HighLocality, |ctx| ctx.flops(1_000_000))
                .elapsed
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spawn_retries_add_deterministic_overhead() {
        use spp_core::{FaultPlan, Machine};
        let run = |prob: f64| {
            let m = Machine::spp1000(2).with_faults(FaultPlan::new(4).with_spawn_failures(prob));
            let mut rt = Runtime::new(m);
            let r = rt.fork_join(16, &Placement::HighLocality, |_| {});
            (r.elapsed, r.spawn_retries)
        };
        let (clean, retries0) = run(0.0);
        assert_eq!(retries0, 0);
        let (a, ra) = run(0.35);
        let (b, rb) = run(0.35);
        assert_eq!((a, ra), (b, rb), "same seed must reproduce exactly");
        assert!(ra > 0, "35% failure over 15 spawns should retry");
        assert!(a > clean, "retries must cost time: {a} vs {clean}");
    }

    #[test]
    fn async_fork_counts_spawn_retries() {
        use spp_core::{FaultPlan, Machine};
        let m = Machine::spp1000(1).with_faults(FaultPlan::new(2).with_spawn_failures(0.5));
        let mut rt = Runtime::new(m);
        let team = Team::place(
            rt.machine.config(),
            4,
            &Placement::Explicit(vec![CpuId(1), CpuId(2), CpuId(3), CpuId(4)]),
        );
        let (_, handle) = rt.fork_async(&team, |_| {});
        assert!(handle.spawn_retries > 0);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn certain_spawn_failure_exhausts_retry_budget() {
        use spp_core::{FaultPlan, Machine};
        let m = Machine::spp1000(2).with_faults(FaultPlan::new(1).with_spawn_failures(1.0));
        let mut rt = Runtime::new(m);
        rt.fork_join(2, &Placement::HighLocality, |_| {});
    }

    #[test]
    fn watched_region_matches_plain_when_healthy() {
        let elapsed = |watched: bool| {
            let mut rt = Runtime::spp1000(2);
            if watched {
                let r = rt
                    .watched_fork_join(
                        8,
                        &Placement::HighLocality,
                        &spp_core::Watchdog::new(u64::MAX - 1),
                        |ctx| ctx.flops(1_000),
                    )
                    .expect("healthy region must not trip");
                r.elapsed
            } else {
                rt.fork_join(8, &Placement::HighLocality, |ctx| ctx.flops(1_000))
                    .elapsed
            }
        };
        assert_eq!(elapsed(true), elapsed(false));
    }

    #[test]
    fn watched_region_trips_on_pre_dead_team_cpu() {
        use spp_core::{FaultPlan, Machine, MemClass, StallKind};
        let m = Machine::spp1000(1).with_faults(FaultPlan::new(8).with_cpu_failure(2, 0));
        let mut rt = Runtime::new(m);
        // Fire the scheduled failure with one priming access.
        let scratch = rt
            .machine
            .alloc(MemClass::NearShared { node: NodeId(0) }, 64);
        let _ = rt.machine.read(CpuId(0), scratch.base);
        let rep = rt
            .watched_fork_join(
                4,
                &Placement::HighLocality,
                &spp_core::Watchdog::new(1_000_000),
                |_| {},
            )
            .expect_err("dead team cpu must trip");
        assert_eq!(rep.kind, StallKind::Barrier);
        assert_eq!(rep.arrival_bitmap, Some(0b1011));
        assert!(rep.to_string().contains("dead"), "{rep}");
    }

    #[test]
    fn watched_region_trips_when_a_cpu_dies_mid_region() {
        use spp_core::{FaultPlan, Machine, MemClass, StallKind};
        // The failure is scheduled at cycle 0 but nothing has touched
        // memory yet, so the fork-time check passes; the first body
        // access fires it and the join barrier reports the dead CPU.
        let m = Machine::spp1000(1).with_faults(FaultPlan::new(8).with_cpu_failure(1, 0));
        let mut rt = Runtime::new(m);
        let arr = SimArray::<f64>::from_elem(
            &mut rt.machine,
            MemClass::NearShared { node: NodeId(0) },
            64,
            0.0,
        );
        let rep = rt
            .watched_fork_join(
                4,
                &Placement::HighLocality,
                &spp_core::Watchdog::new(u64::MAX - 1),
                |ctx| {
                    let _ = ctx.read(&arr, 0);
                },
            )
            .expect_err("mid-region death must trip at the join");
        assert_eq!(rep.kind, StallKind::Barrier);
        assert!(rep.to_string().contains("dead cpu(s) [1]"), "{rep}");
    }

    #[test]
    fn watched_region_reports_spawn_retry_livelock() {
        use spp_core::{FaultPlan, Machine, StallKind};
        let m = Machine::spp1000(2).with_faults(FaultPlan::new(1).with_spawn_failures(1.0));
        let mut rt = Runtime::new(m);
        let rep = rt
            .watched_fork_join(
                2,
                &Placement::HighLocality,
                &spp_core::Watchdog::new(1_000_000),
                |_| {},
            )
            .expect_err("certain spawn failure must trip, not panic");
        assert_eq!(rep.kind, StallKind::RetryLoop);
        assert!(rep.to_string().contains("failed after"), "{rep}");
    }

    #[test]
    fn traced_region_emits_fork_span_and_barrier_events() {
        use spp_core::{Machine, TraceEvent};
        let mut rt = Runtime::new(Machine::spp1000(1).with_tracing());
        let rep = rt.fork_join(4, &Placement::HighLocality, |ctx| ctx.flops(1_000));
        let events = rt.machine.trace_events();
        let spans: Vec<_> = events
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::ForkSpan { threads, dur } => Some((r.at, threads, dur)),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0], (0, 4, rep.elapsed), "span covers the region");
        let arrives = events
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::BarrierArrive))
            .count();
        let releases = events
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::BarrierRelease))
            .count();
        assert_eq!(arrives, 4, "one arrival per team member");
        assert_eq!(releases, 4, "one release per team member");
    }

    #[test]
    fn tracing_does_not_change_region_timing() {
        use spp_core::Machine;
        let run = |traced: bool| {
            let m = Machine::spp1000(2);
            let m = if traced { m.with_tracing() } else { m };
            let mut rt = Runtime::new(m);
            let mut totals = Vec::new();
            for _ in 0..3 {
                let rep = rt.fork_join(8, &Placement::Uniform, |ctx| ctx.flops(500));
                totals.push((rep.elapsed, rep.busy.clone(), rep.start.clone()));
            }
            (totals, *rt.machine.stats())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn watched_trip_emits_a_watchdog_event() {
        use spp_core::{FaultPlan, Machine, StallKind, TraceEvent};
        let m = Machine::spp1000(2)
            .with_faults(FaultPlan::new(1).with_spawn_failures(1.0))
            .with_tracing();
        let mut rt = Runtime::new(m);
        let rep = rt
            .watched_fork_join(
                2,
                &Placement::HighLocality,
                &spp_core::Watchdog::new(1_000_000),
                |_| {},
            )
            .expect_err("certain spawn failure must trip");
        assert_eq!(rep.kind, StallKind::RetryLoop);
        assert!(rt.machine.trace_events().iter().any(|r| matches!(
            r.event,
            TraceEvent::Watchdog {
                kind: StallKind::RetryLoop
            }
        )));
    }

    #[test]
    fn schedule_orders_are_valid_permutations() {
        for n in [0usize, 1, 2, 7, 16] {
            for policy in [
                SchedulePolicy::Identity,
                SchedulePolicy::Reversed,
                SchedulePolicy::Shuffled { seed: 42 },
                SchedulePolicy::Explicit((0..n).rev().collect()),
            ] {
                let mut o = policy.order(n);
                o.sort_unstable();
                assert_eq!(o, (0..n).collect::<Vec<_>>(), "{policy:?} n={n}");
            }
        }
        assert_eq!(SchedulePolicy::Identity.order(4), vec![0, 1, 2, 3]);
        assert_eq!(SchedulePolicy::Reversed.order(4), vec![3, 2, 1, 0]);
        assert_eq!(
            SchedulePolicy::Shuffled { seed: 7 }.order(16),
            SchedulePolicy::Shuffled { seed: 7 }.order(16),
            "same seed, same order"
        );
        assert_ne!(
            SchedulePolicy::Shuffled { seed: 7 }.order(16),
            SchedulePolicy::Shuffled { seed: 8 }.order(16),
            "different seeds should disagree on 16 elements"
        );
        // A malformed explicit order falls back to identity.
        assert_eq!(
            SchedulePolicy::Explicit(vec![0, 0, 1]).order(3),
            vec![0, 1, 2]
        );
        assert_eq!(SchedulePolicy::Explicit(vec![1, 0]).order(3), vec![0, 1, 2]);
    }

    #[test]
    fn identity_schedule_is_bit_identical_to_default() {
        let run = |rt: &mut Runtime| {
            let mut arr =
                SimArray::<f64>::from_elem(&mut rt.machine, MemClass::FarShared, 512, 0.0);
            let rep = rt.fork_join(8, &Placement::Uniform, |ctx| {
                for i in ctx.chunk(512) {
                    ctx.update(&mut arr, i, |v| v + 1.0);
                }
            });
            (rep.elapsed, rep.busy.clone(), *rt.machine.stats())
        };
        let mut plain = Runtime::spp1000(2);
        let mut identity = Runtime::spp1000(2).with_schedule(SchedulePolicy::Identity);
        assert_eq!(run(&mut plain), run(&mut identity));
    }

    #[test]
    fn permuted_schedules_agree_on_disjoint_work() {
        // Chunked (owner-computes) work must be schedule-invariant:
        // same data, same flops, same per-thread busy times.
        let run = |policy: SchedulePolicy| {
            let mut rt = Runtime::spp1000(2).with_schedule(policy);
            let mut arr =
                SimArray::<f64>::from_elem(&mut rt.machine, MemClass::FarShared, 512, 0.0);
            let rep = rt.fork_join(8, &Placement::Uniform, |ctx| {
                for i in ctx.chunk(512) {
                    ctx.write(&mut arr, i, i as f64);
                }
                ctx.flops(100);
            });
            (rep.busy.clone(), rep.flops, arr.into_host())
        };
        let base = run(SchedulePolicy::Identity);
        assert_eq!(base, run(SchedulePolicy::Reversed));
        assert_eq!(base, run(SchedulePolicy::Shuffled { seed: 3 }));
    }

    #[test]
    fn phased_region_orders_cross_thread_reads() {
        // Phase 0: every thread writes its own slot. Phase 1: every
        // thread reads its neighbor's slot — only safe because the
        // inter-phase barrier orders the two.
        let mut rt = Runtime::spp1000(1);
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut arr = SimArray::<f64>::from_elem(
            &mut rt.machine,
            MemClass::NearShared { node: NodeId(0) },
            4,
            0.0,
        );
        let mut seen = vec![0.0; 4];
        let rep = rt.team_fork_join_phases(&team, 2, |ctx, phase| {
            if phase == 0 {
                ctx.write(&mut arr, ctx.tid, ctx.tid as f64 + 1.0);
            } else {
                seen[ctx.tid] = ctx.read(&arr, (ctx.tid + 1) % 4);
            }
        });
        assert_eq!(seen, vec![2.0, 3.0, 4.0, 1.0]);
        assert!(rep.elapsed > 0);
        assert_eq!(rep.busy.len(), 4);
    }

    #[test]
    fn phase_barrier_costs_time() {
        let elapsed = |phases: usize| {
            let mut rt = Runtime::spp1000(1);
            let team = Team::place(rt.machine.config(), 8, &Placement::HighLocality);
            rt.team_fork_join_phases(&team, phases, |ctx, _| ctx.flops(100))
                .elapsed
        };
        // Two phases do twice the compute plus one barrier.
        assert!(elapsed(2) > 2 * 100 / 2, "sanity");
        assert!(
            elapsed(2) > elapsed(1) + 100,
            "the inter-phase barrier must cost real cycles"
        );
    }

    #[test]
    fn single_phase_region_matches_team_fork_join() {
        let run = |phased: bool| {
            let mut rt = Runtime::spp1000(2);
            let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
            let rep = if phased {
                rt.team_fork_join_phases(&team, 1, |ctx, _| ctx.flops(500))
            } else {
                rt.team_fork_join(&team, |ctx| ctx.flops(500))
            };
            (
                rep.elapsed,
                rep.busy.clone(),
                rep.start.clone(),
                *rt.machine.stats(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn profiled_phases_are_bit_identical_to_plain_phases() {
        let body = |ctx: &mut ThreadCtx<Machine>, phase: usize| {
            ctx.flops(200 * (ctx.tid as u64 + 1) + 50 * phase as u64);
        };
        let mut plain = Runtime::spp1000(2);
        let team = Team::place(plain.machine.config(), 8, &Placement::Uniform);
        let rep_p = plain.team_fork_join_phases(&team, 3, body);

        let mut prof = Runtime::spp1000(2);
        let team2 = Team::place(prof.machine.config(), 8, &Placement::Uniform);
        let (rep_q, intervals) = prof.team_fork_join_phases_profiled(&team2, 3, body);

        assert_eq!(plain.machine.clock(), prof.machine.clock());
        assert_eq!(plain.machine.stats, prof.machine.stats);
        assert_eq!(rep_p.elapsed, rep_q.elapsed);
        assert_eq!(rep_p.busy, rep_q.busy);
        assert_eq!(rep_p.start, rep_q.start);
        assert_eq!(rep_p.join.release, rep_q.join.release);
        assert_eq!(intervals.len(), 3);
    }

    #[test]
    fn interval_decomposition_reconciles_with_the_region_report() {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 8, &Placement::Uniform);
        let mut arr =
            SimArray::<f64>::from_elem(&mut rt.machine, spp_core::MemClass::FarShared, 4096, 0.0);
        let (rep, intervals) = rt.team_fork_join_phases_profiled(&team, 3, |ctx, phase| {
            // Unbalanced: higher tids touch more remote lines.
            let n = 64 * (ctx.tid + 1) + 16 * phase;
            for i in 0..n {
                arr.write(ctx.machine, ctx.cpu, (ctx.tid * 512 + i) % 4096, 1.0);
                ctx.clock += 1;
            }
        });
        assert_eq!(intervals.len(), 3);
        let n = team.len();
        for tid in 0..n {
            // Total busy = per-interval body time plus every
            // inter-phase barrier wait (the join wait is not busy).
            let body: Cycles = intervals.iter().map(|iv| iv.busy[tid]).sum();
            let waits: Cycles = intervals[..intervals.len() - 1]
                .iter()
                .map(|iv| iv.stall[tid])
                .sum();
            assert_eq!(rep.busy[tid], body + waits, "tid {tid}");
        }
        let last = intervals.last().unwrap();
        assert_eq!(last.critical_arrival(), rep.join.last_arrival);
        for iv in &intervals {
            // The straggler is the interval's last arrival, and other
            // threads' waits are consistent with it.
            let max = *iv.arrival.iter().max().unwrap();
            assert_eq!(iv.arrival[iv.straggler], max);
            // Remote-heavy traffic: dominant level must be a miss.
            assert_ne!(iv.dominant, spp_core::heat::ServiceLevel::Hit);
        }
        // Interval 0 has no release skew yet, so the unbalanced body
        // makes the top tid the straggler there.
        assert_eq!(intervals[0].straggler, n - 1);
        let table = crate::interval::intervals_report(&intervals);
        assert_eq!(table.lines().count(), 1 + intervals.len());
    }

    #[test]
    fn profiled_phases_emit_straggler_events_when_tracing() {
        let mut rt = Runtime::new(Machine::spp1000(1).with_tracing());
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let (_, intervals) = rt.team_fork_join_phases_profiled(&team, 2, |ctx, _| {
            ctx.flops(100 * (ctx.tid as u64 + 1))
        });
        let stragglers: Vec<_> = rt
            .machine
            .trace_events()
            .into_iter()
            .filter(|r| matches!(r.event, TraceEvent::Straggler { .. }))
            .collect();
        assert_eq!(stragglers.len(), intervals.len());
        assert_eq!(stragglers[0].cpu, intervals[0].straggler_cpu());
    }

    #[test]
    fn phased_clocks_carry_across_phases() {
        let mut rt = Runtime::spp1000(1);
        let team = Team::place(rt.machine.config(), 2, &Placement::HighLocality);
        let mut clocks = Vec::new();
        rt.team_fork_join_phases(&team, 2, |ctx, phase| {
            ctx.flops(100);
            clocks.push((phase, ctx.tid, ctx.clock()));
        });
        // Phase-1 clocks include phase-0 work plus the barrier.
        let p0: Vec<_> = clocks.iter().filter(|c| c.0 == 0).collect();
        let p1: Vec<_> = clocks.iter().filter(|c| c.0 == 1).collect();
        for (a, b) in p0.iter().zip(&p1) {
            assert!(b.2 > a.2 + 100, "{clocks:?}");
        }
    }

    #[test]
    fn race_detection_flags_nothing_on_disjoint_regions() {
        use spp_core::Machine;
        let mut rt = Runtime::new(Machine::spp1000(1).with_race_detection());
        let mut arr = SimArray::<f64>::from_elem(
            &mut rt.machine,
            MemClass::NearShared { node: NodeId(0) },
            256,
            0.0,
        );
        arr.set_label(&mut rt.machine, "arr");
        rt.fork_join(4, &Placement::HighLocality, |ctx| {
            for i in ctx.chunk(256) {
                ctx.update(&mut arr, i, |v| v + 1.0);
            }
        });
        let report = rt.machine.race_report();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.regions, 1);
        assert!(report.accesses > 0);
    }

    #[test]
    fn race_detection_flags_a_real_conflict() {
        use spp_core::Machine;
        let mut rt = Runtime::new(Machine::spp1000(1).with_race_detection());
        let mut shared = SimArray::<f64>::from_elem(
            &mut rt.machine,
            MemClass::NearShared { node: NodeId(0) },
            1,
            0.0,
        );
        shared.set_label(&mut rt.machine, "acc");
        rt.fork_join(4, &Placement::HighLocality, |ctx| {
            // Every thread read-modify-writes element 0 unguarded.
            ctx.update(&mut shared, 0, |v| v + 1.0);
        });
        let report = rt.machine.race_report();
        assert!(!report.is_clean());
        assert!(report.total_races > 0, "{report}");
        assert!(report.races[0].to_string().contains("acc[0]"), "{report}");
    }

    #[test]
    fn gated_updates_do_not_race() {
        use spp_core::Machine;
        let mut rt = Runtime::new(Machine::spp1000(1).with_race_detection());
        let mut gate = crate::gate::SimGate::new(&mut rt.machine, NodeId(0));
        let mut shared = SimArray::<f64>::from_elem(
            &mut rt.machine,
            MemClass::NearShared { node: NodeId(0) },
            1,
            0.0,
        );
        rt.fork_join(4, &Placement::HighLocality, |ctx| {
            gate.critical(ctx, |ctx| ctx.update(&mut shared, 0, |v| v + 1.0));
        });
        let report = rt.machine.race_report();
        assert!(report.is_clean(), "{report}");
        assert_eq!(shared.host()[0], 4.0);
    }

    #[test]
    fn phased_writes_then_reads_do_not_race() {
        use spp_core::Machine;
        let mut rt = Runtime::new(Machine::spp1000(1).with_race_detection());
        let team = Team::place(rt.machine.config(), 4, &Placement::HighLocality);
        let mut arr = SimArray::<f64>::from_elem(
            &mut rt.machine,
            MemClass::NearShared { node: NodeId(0) },
            4,
            0.0,
        );
        rt.team_fork_join_phases(&team, 2, |ctx, phase| {
            if phase == 0 {
                ctx.write(&mut arr, ctx.tid, 1.0);
            } else {
                let _ = ctx.read(&arr, (ctx.tid + 1) % 4);
            }
        });
        let report = rt.machine.race_report();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn update_reads_then_writes() {
        let mut rt = Runtime::spp1000(1);
        let mut arr = SimArray::<f64>::from_elem(
            &mut rt.machine,
            MemClass::NearShared { node: NodeId(0) },
            4,
            1.0,
        );
        rt.serial(CpuId(0), |ctx| {
            ctx.update(&mut arr, 2, |v| v + 2.5);
        });
        assert_eq!(arr.host()[2], 3.5);
    }
}
