//! Gates (mutual exclusion) and thread-private allocation helpers.
//!
//! §3.2: "Ordering of events and mutual exclusion can be managed with
//! high level compiler directives called critical sections, gates, and
//! barriers". A gate is a semaphore-guarded critical section; entries
//! serialize. Because threads replay sequentially, contention is
//! modelled with a simulated "gate free at" clock compared against
//! each entering thread's own clock.

use crate::fork::ThreadCtx;
use spp_core::{Cycles, MemClass, MemPort, NodeId, RaceEvent, SimArray, SimError};

/// A simulated gate / critical section.
#[derive(Debug, Clone)]
pub struct SimGate {
    sem_addr: u64,
    free_at: Cycles,
}

impl SimGate {
    /// Allocate gate state in near-shared memory on `node`.
    pub fn new<P: MemPort>(m: &mut P, node: NodeId) -> Self {
        let sem = m.alloc(MemClass::NearShared { node }, 64);
        SimGate {
            sem_addr: sem.base,
            free_at: 0,
        }
    }

    /// Reset contention state (call between parallel regions when the
    /// region clocks restart from zero).
    pub fn reset(&mut self) {
        self.free_at = 0;
    }

    /// Execute `body` inside the gate as `ctx`'s thread: the thread
    /// waits for the gate, pays the semaphore costs, runs the body,
    /// and releases. Panics with [`SimError::GateReentered`] if the
    /// thread already holds this gate (on hardware that deadlocks);
    /// see [`SimGate::try_critical`] for the fallible variant.
    pub fn critical<P: MemPort, R>(
        &mut self,
        ctx: &mut ThreadCtx<'_, P>,
        body: impl FnOnce(&mut ThreadCtx<'_, P>) -> R,
    ) -> R {
        self.try_critical(ctx, body)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`SimGate::critical`]: returns
    /// [`SimError::GateReentered`] — instead of pricing a protocol the
    /// hardware would self-deadlock on — when `ctx`'s thread is
    /// already inside this gate.
    pub fn try_critical<P: MemPort, R>(
        &mut self,
        ctx: &mut ThreadCtx<'_, P>,
        body: impl FnOnce(&mut ThreadCtx<'_, P>) -> R,
    ) -> Result<R, SimError> {
        if ctx.gates.contains(&self.sem_addr) {
            return Err(SimError::GateReentered {
                gate: self.sem_addr,
                tid: ctx.tid,
            });
        }
        let overhead = ctx_gate_overhead(ctx);
        let cpu = ctx.cpu;
        let acquire = ctx.machine().uncached_op(cpu, self.sem_addr);
        // Wait until the gate is free, then pay acquisition.
        let start = ctx.clock().max(self.free_at) + acquire + overhead / 2;
        let wait = start - ctx.clock();
        ctx.cycles(wait);
        ctx.gates.push(self.sem_addr);
        if ctx.machine().racing() {
            let ev = RaceEvent::GateEnter {
                gate: self.sem_addr,
            };
            ctx.machine().race(ev);
        }
        let r = body(ctx);
        if ctx.machine().racing() {
            let ev = RaceEvent::GateExit {
                gate: self.sem_addr,
            };
            ctx.machine().race(ev);
        }
        ctx.gates.pop();
        let release = ctx.machine().uncached_op(cpu, self.sem_addr);
        ctx.cycles(release + overhead / 2);
        self.free_at = ctx.clock();
        Ok(r)
    }
}

fn ctx_gate_overhead<P: MemPort>(ctx: &ThreadCtx<'_, P>) -> Cycles {
    ctx.cost_model().gate_overhead
}

/// One thread-private [`SimArray`] per team member, each homed at its
/// owner's functional unit (the Convex *thread private* class).
#[derive(Debug, Clone)]
pub struct PrivateArrays<T> {
    arrays: Vec<SimArray<T>>,
}

impl<T: Copy> PrivateArrays<T> {
    /// Allocate `len` elements of `v` privately for each CPU of `team`.
    pub fn new<P: MemPort>(m: &mut P, team: &crate::team::Team, len: usize, v: T) -> Self {
        let arrays = team
            .cpus()
            .iter()
            .map(|cpu| {
                let home = m.config().fu_of_cpu(*cpu);
                SimArray::from_elem(m, MemClass::ThreadPrivate { home }, len, v)
            })
            .collect();
        PrivateArrays { arrays }
    }

    /// The calling thread's private copy.
    pub fn mine(&self, tid: usize) -> &SimArray<T> {
        &self.arrays[tid]
    }

    /// Mutable access to the calling thread's private copy.
    pub fn mine_mut(&mut self, tid: usize) -> &mut SimArray<T> {
        &mut self.arrays[tid]
    }

    /// Number of copies (team size at allocation).
    pub fn copies(&self) -> usize {
        self.arrays.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fork::Runtime;
    use crate::team::{Placement, Team};

    #[test]
    fn gate_serializes_critical_sections() {
        let mut rt = Runtime::spp1000(1);
        let mut gate = SimGate::new(&mut rt.machine, NodeId(0));
        let mut exits = Vec::new();
        rt.fork_join(4, &Placement::HighLocality, |ctx| {
            gate.critical(ctx, |ctx| ctx.flops(100));
            exits.push(ctx.clock());
        });
        // Each exit strictly later than the previous: serialized.
        for w in exits.windows(2) {
            assert!(w[1] > w[0], "critical sections overlapped: {exits:?}");
        }
    }

    #[test]
    fn gate_reset_clears_contention() {
        let mut rt = Runtime::spp1000(1);
        let mut gate = SimGate::new(&mut rt.machine, NodeId(0));
        rt.fork_join(4, &Placement::HighLocality, |ctx| {
            gate.critical(ctx, |_| {});
        });
        let busy_contended = {
            let mut first = 0;
            rt.fork_join(1, &Placement::HighLocality, |ctx| {
                gate.critical(ctx, |_| {});
                first = ctx.clock();
            });
            first
        };
        gate.reset();
        let mut fresh = 0;
        rt.fork_join(1, &Placement::HighLocality, |ctx| {
            gate.critical(ctx, |_| {});
            fresh = ctx.clock();
        });
        assert!(fresh <= busy_contended);
    }

    #[test]
    fn gate_reentry_is_a_typed_error() {
        let mut rt = Runtime::spp1000(1);
        let mut gate = SimGate::new(&mut rt.machine, NodeId(0));
        let mut errs = Vec::new();
        rt.fork_join(2, &Placement::HighLocality, |ctx| {
            // A gate taken inside itself must be refused, and the
            // refusal must not poison the outer critical section.
            let mut inner = gate.clone();
            let err = gate
                .try_critical(ctx, |ctx| inner.try_critical(ctx, |_| ()).unwrap_err())
                .unwrap();
            errs.push((ctx.tid, err));
        });
        assert_eq!(errs.len(), 2);
        for (tid, err) in errs {
            assert!(
                matches!(err, SimError::GateReentered { tid: t, .. } if t == tid),
                "{err}"
            );
        }
    }

    #[test]
    fn distinct_gates_still_nest() {
        let mut rt = Runtime::spp1000(1);
        let mut outer = SimGate::new(&mut rt.machine, NodeId(0));
        let mut inner = SimGate::new(&mut rt.machine, NodeId(0));
        let mut ran = 0;
        rt.fork_join(2, &Placement::HighLocality, |ctx| {
            outer.critical(ctx, |ctx| {
                inner.critical(ctx, |_| {});
            });
            ran += 1;
        });
        assert_eq!(ran, 2);
    }

    #[test]
    #[should_panic(expected = "re-entered")]
    fn panicking_wrapper_reports_reentry() {
        let mut rt = Runtime::spp1000(1);
        let mut gate = SimGate::new(&mut rt.machine, NodeId(0));
        rt.fork_join(1, &Placement::HighLocality, |ctx| {
            let mut inner = gate.clone();
            gate.critical(ctx, |ctx| {
                inner.critical(ctx, |_| {});
            });
        });
    }

    #[test]
    fn private_arrays_one_copy_per_thread() {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 4, &Placement::Uniform);
        let mut p = PrivateArrays::<f64>::new(&mut rt.machine, &team, 8, 0.0);
        assert_eq!(p.copies(), 4);
        rt.team_fork_join(&team, |ctx| {
            let tid = ctx.tid;
            let mine = p.mine_mut(tid);
            ctx.write(mine, 0, tid as f64);
        });
        for tid in 0..4 {
            assert_eq!(p.mine(tid).host()[0], tid as f64);
        }
    }

    #[test]
    fn private_arrays_are_local_to_their_owner() {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), 2, &Placement::Uniform);
        let p = PrivateArrays::<f64>::new(&mut rt.machine, &team, 64, 0.0);
        // Thread 1 runs on node 1; its private array must be homed there.
        let addr = p.mine(1).addr(0);
        let (node, _) = rt.machine.home_of(addr);
        assert_eq!(node, NodeId(1));
    }
}
