//! Barrier-interval critical-path analysis.
//!
//! The paper's fig. 6/fig. 8 discussion is an Amdahl argument: each
//! barrier-to-barrier interval of a phased region is only as fast as
//! its *straggler*, and the interesting question is always which CPU
//! that was and which service level of the memory hierarchy it was
//! stuck in. This module reproduces that decomposition:
//! `Runtime::team_fork_join_phases_profiled` runs a phased region
//! bit-identically to the unprofiled path while snapshotting each
//! thread's busy time and per-CPU [`MemStats`] around every phase, and
//! yields one [`IntervalReport`] per barrier interval — per-thread
//! busy/stall split, the straggler, and the straggler's dominant
//! service level ([`ServiceLevel::dominant_miss`] of its counter
//! delta over the interval).
//!
//! Profiling only *reads* machine state (the per-CPU counter
//! breakdown), so a profiled run's cycles, [`MemStats`] and
//! [`crate::RegionReport`] are bit-identical to the plain
//! [`crate::Runtime::team_fork_join_phases`] run — the same
//! transparency contract as tracing and the heatmap.

use spp_core::heat::ServiceLevel;
use spp_core::stats::MemStats;
use spp_core::Cycles;

/// Busy/stall decomposition of one barrier interval (the work between
/// two consecutive barrier releases) of a phased region.
#[derive(Debug, Clone)]
pub struct IntervalReport {
    /// Interval index == phase index within the region.
    pub index: usize,
    /// Global CPU id of each thread (indexed by tid).
    pub cpus: Vec<u16>,
    /// Cycles each thread spent executing its body this interval.
    pub busy: Vec<Cycles>,
    /// Cycles each thread waited at the barrier ending the interval
    /// (release − arrival).
    pub stall: Vec<Cycles>,
    /// Each thread's arrival time at the closing barrier (region
    /// clock: spawn skew + accumulated busy).
    pub arrival: Vec<Cycles>,
    /// Each thread's release time from the closing barrier.
    pub release: Vec<Cycles>,
    /// tid of the straggler: the last arrival (ties go to the lowest
    /// tid, matching the barrier's deterministic ordering).
    pub straggler: usize,
    /// Cycles the straggler held the rest of the team:
    /// Σ over other threads of (straggler arrival − their arrival).
    pub straggler_held: Cycles,
    /// The straggler's dominant miss service level over the interval
    /// ([`ServiceLevel::Hit`] when its body missed nowhere).
    pub dominant: ServiceLevel,
}

impl IntervalReport {
    /// Assemble one interval from its raw timings and the per-thread
    /// counter deltas over the interval's bodies.
    pub fn from_timings(
        index: usize,
        cpus: Vec<u16>,
        busy: Vec<Cycles>,
        arrival: Vec<Cycles>,
        release: Vec<Cycles>,
        deltas: &[MemStats],
    ) -> Self {
        debug_assert_eq!(cpus.len(), busy.len());
        debug_assert_eq!(busy.len(), arrival.len());
        debug_assert_eq!(arrival.len(), release.len());
        debug_assert_eq!(release.len(), deltas.len());
        let mut straggler = 0usize;
        for (tid, a) in arrival.iter().enumerate() {
            if *a > arrival[straggler] {
                straggler = tid;
            }
        }
        let held = arrival
            .iter()
            .map(|a| arrival[straggler] - a)
            .sum::<Cycles>();
        let stall = release
            .iter()
            .zip(arrival.iter())
            .map(|(r, a)| r.saturating_sub(*a))
            .collect();
        IntervalReport {
            index,
            cpus,
            busy,
            stall,
            arrival,
            release,
            straggler,
            straggler_held: held,
            dominant: ServiceLevel::dominant_miss(&deltas[straggler]),
        }
    }

    /// Global CPU id of the straggler.
    pub fn straggler_cpu(&self) -> u16 {
        self.cpus[self.straggler]
    }

    /// The straggler's arrival: the interval's critical-path length
    /// in region time.
    pub fn critical_arrival(&self) -> Cycles {
        self.arrival[self.straggler]
    }

    /// Total cycles the team spent waiting at the closing barrier.
    pub fn total_stall(&self) -> Cycles {
        self.stall.iter().sum()
    }

    /// Total cycles the team spent in bodies this interval.
    pub fn total_busy(&self) -> Cycles {
        self.busy.iter().sum()
    }
}

/// Human-readable per-interval critical-path table: one row per
/// barrier interval with the straggler, its dominant service level,
/// and the team's busy/stall split. Deterministic for a deterministic
/// run.
pub fn intervals_report(intervals: &[IntervalReport]) -> String {
    let mut out =
        String::from("interval straggler  cpu dominant     busy(sum)    stall(sum)      held\n");
    for iv in intervals {
        out.push_str(&format!(
            "{:>8} {:>9} {:>4} {:<8} {:>13} {:>13} {:>9}\n",
            iv.index,
            iv.straggler,
            iv.straggler_cpu(),
            iv.dominant.label(),
            iv.total_busy(),
            iv.total_stall(),
            iv.straggler_held,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straggler_stall_and_dominant_level_are_derived_correctly() {
        let deltas = vec![
            MemStats {
                local_misses: 1,
                ..Default::default()
            },
            MemStats {
                sci_fetches: 9,
                local_misses: 2,
                ..Default::default()
            },
            MemStats::default(),
        ];
        let iv = IntervalReport::from_timings(
            3,
            vec![0, 4, 8],
            vec![100, 300, 50],
            vec![120, 320, 70],
            vec![330, 330, 335],
            &deltas,
        );
        assert_eq!(iv.straggler, 1);
        assert_eq!(iv.straggler_cpu(), 4);
        assert_eq!(iv.dominant, ServiceLevel::Sci);
        assert_eq!(iv.stall, vec![210, 10, 265]);
        // The middle term is the straggler's zero distance to itself.
        #[allow(clippy::identity_op)]
        let held = (320 - 120) + (320 - 320) + (320 - 70);
        assert_eq!(iv.straggler_held, held);
        assert_eq!(iv.critical_arrival(), 320);
        let table = intervals_report(&[iv]);
        assert!(table.contains("sci"), "{table}");
    }

    #[test]
    fn straggler_ties_break_to_the_lowest_tid() {
        let deltas = vec![MemStats::default(); 2];
        let iv = IntervalReport::from_timings(
            0,
            vec![0, 1],
            vec![10, 10],
            vec![10, 10],
            vec![15, 15],
            &deltas,
        );
        assert_eq!(iv.straggler, 0);
        assert_eq!(iv.dominant, ServiceLevel::Hit);
    }
}
