//! Thread teams and placement policies.
//!
//! The paper's §4 experiments use two placements: *high locality*
//! (fill one hypernode before spilling onto the next) and *uniform
//! distribution* (equal thread counts per hypernode). Both are
//! provided, plus explicit placement for ad-hoc experiments.

use spp_core::{CpuId, MachineConfig, NodeId, SimError};

/// How a team's threads are mapped onto CPUs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Placement {
    /// Fill hypernode 0's CPUs first, then hypernode 1, ... (the
    /// paper's "high locality" curves).
    HighLocality,
    /// Round-robin threads across hypernodes so each holds an equal
    /// share (the paper's "uniform distribution" curves).
    Uniform,
    /// Thread `i` runs on `cpus[i]`.
    Explicit(Vec<CpuId>),
}

/// A set of simulated threads bound to CPUs.
#[derive(Debug, Clone)]
pub struct Team {
    cpus: Vec<CpuId>,
    nodes_used: usize,
    /// `chunk_rank[tid]` — the static-scheduling chunk index thread
    /// `tid` owns. Threads are ranked by (node, tid) so that chunk
    /// ownership lines up with block-shared data placement (first
    /// blocks homed on the first node): locality-aware loop
    /// assignment, which every placement-conscious code does.
    chunk_rank: Vec<usize>,
}

impl Team {
    /// Map `n` threads onto the machine with the given placement.
    ///
    /// # Panics
    /// If `n` is zero, exceeds the CPU count, or an explicit list has
    /// the wrong length or repeats a CPU. Use [`Team::try_place`] to
    /// get the typed [`SimError`] instead.
    pub fn place(cfg: &MachineConfig, n: usize, placement: &Placement) -> Self {
        Self::try_place(cfg, n, placement).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Team::place`].
    pub fn try_place(
        cfg: &MachineConfig,
        n: usize,
        placement: &Placement,
    ) -> Result<Self, SimError> {
        if n == 0 {
            return Err(SimError::EmptyTeam);
        }
        if n > cfg.num_cpus() {
            return Err(SimError::TeamTooLarge {
                threads: n,
                cpus: cfg.num_cpus(),
            });
        }
        let cpus: Vec<CpuId> = match placement {
            Placement::HighLocality => (0..n as u16).map(CpuId).collect(),
            Placement::Uniform => {
                let nodes = cfg.hypernodes.min(n);
                let per_node = cfg.cpus_per_node();
                let mut cpus = Vec::with_capacity(n);
                for t in 0..n {
                    let node = t % nodes;
                    let slot = t / nodes;
                    if slot >= per_node {
                        return Err(SimError::PlacementOverflow { threads: n, node });
                    }
                    cpus.push(CpuId((node * per_node + slot) as u16));
                }
                cpus
            }
            Placement::Explicit(list) => {
                if list.len() != n {
                    return Err(SimError::PlacementLengthMismatch {
                        threads: n,
                        cpus: list.len(),
                    });
                }
                let mut seen = vec![false; cfg.num_cpus()];
                for c in list {
                    if c.0 as usize >= cfg.num_cpus() {
                        return Err(SimError::CpuOutOfRange {
                            cpu: c.0,
                            cpus: cfg.num_cpus(),
                        });
                    }
                    if seen[c.0 as usize] {
                        return Err(SimError::CpuReused { cpu: c.0 });
                    }
                    seen[c.0 as usize] = true;
                }
                list.clone()
            }
        };
        let mut nodes: Vec<NodeId> = cpus.iter().map(|c| cfg.node_of_cpu(*c)).collect();
        nodes.sort_unstable();
        nodes.dedup();
        // Rank threads by (node, tid): thread ranks are contiguous per
        // node, so chunk i of a block-shared array is owned by a
        // thread on the node hosting block i.
        let mut by_node: Vec<usize> = (0..cpus.len()).collect();
        by_node.sort_by_key(|t| (cfg.node_of_cpu(cpus[*t]).0, *t));
        let mut chunk_rank = vec![0usize; cpus.len()];
        for (rank, tid) in by_node.iter().enumerate() {
            chunk_rank[*tid] = rank;
        }
        Ok(Team {
            cpus,
            nodes_used: nodes.len(),
            chunk_rank,
        })
    }

    /// Number of threads.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// True for an empty team (never constructed by [`Team::place`]).
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    /// CPU that thread `tid` runs on.
    pub fn cpu(&self, tid: usize) -> CpuId {
        self.cpus[tid]
    }

    /// All CPUs in thread order.
    pub fn cpus(&self) -> &[CpuId] {
        &self.cpus
    }

    /// Number of distinct hypernodes the team spans.
    pub fn nodes_used(&self) -> usize {
        self.nodes_used
    }

    /// The locality-aligned chunk index thread `tid` owns (threads
    /// ranked by node, then tid).
    pub fn chunk_rank(&self, tid: usize) -> usize {
        self.chunk_rank[tid]
    }

    /// The placement class a locality-aware shared-memory code gives a
    /// `bytes`-sized shared array for this team (§3.2/§6 of the paper:
    /// placement control "became crucial"): near-shared on the team's
    /// hypernode when the team fits on one, otherwise block-shared
    /// with one contiguous block per hypernode so thread `i`'s chunk
    /// is homed where thread `i` runs.
    pub fn shared_class(&self, cfg: &MachineConfig, bytes: u64) -> spp_core::MemClass {
        use spp_core::MemClass;
        if self.nodes_used <= 1 {
            MemClass::NearShared {
                node: cfg.node_of_cpu(self.cpus[0]),
            }
        } else {
            let page = cfg.page_bytes as u64;
            let per_node = bytes.div_ceil(self.nodes_used as u64);
            let block = per_node.div_ceil(page).max(1) * page;
            MemClass::BlockShared {
                block_bytes: block as usize,
            }
        }
    }
}

/// Split `0..n` into `parts` contiguous chunks whose sizes differ by
/// at most one (static loop scheduling).
pub fn chunk_range(n: usize, parts: usize, part: usize) -> std::ops::Range<usize> {
    debug_assert!(part < parts);
    let base = n / parts;
    let extra = n % parts;
    let start = part * base + part.min(extra);
    let len = base + usize::from(part < extra);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_core::MachineConfig;

    fn cfg() -> MachineConfig {
        MachineConfig::spp1000(2)
    }

    #[test]
    fn high_locality_fills_node0_first() {
        let t = Team::place(&cfg(), 8, &Placement::HighLocality);
        assert!(t.cpus().iter().all(|c| c.0 < 8));
        assert_eq!(t.nodes_used(), 1);
        let t = Team::place(&cfg(), 9, &Placement::HighLocality);
        assert_eq!(t.cpu(8), CpuId(8));
        assert_eq!(t.nodes_used(), 2);
    }

    #[test]
    fn uniform_alternates_nodes() {
        let t = Team::place(&cfg(), 4, &Placement::Uniform);
        let nodes: Vec<u8> = t.cpus().iter().map(|c| cfg().node_of_cpu(*c).0).collect();
        assert_eq!(nodes, vec![0, 1, 0, 1]);
        assert_eq!(t.nodes_used(), 2);
    }

    #[test]
    fn uniform_single_thread_uses_one_node() {
        let t = Team::place(&cfg(), 1, &Placement::Uniform);
        assert_eq!(t.nodes_used(), 1);
    }

    #[test]
    fn uniform_16_threads_uses_all_cpus() {
        let t = Team::place(&cfg(), 16, &Placement::Uniform);
        let mut cpus: Vec<u16> = t.cpus().iter().map(|c| c.0).collect();
        cpus.sort_unstable();
        assert_eq!(cpus, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn explicit_placement_respected() {
        let t = Team::place(&cfg(), 2, &Placement::Explicit(vec![CpuId(3), CpuId(12)]));
        assert_eq!(t.cpu(0), CpuId(3));
        assert_eq!(t.cpu(1), CpuId(12));
        assert_eq!(t.nodes_used(), 2);
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn explicit_rejects_duplicates() {
        Team::place(&cfg(), 2, &Placement::Explicit(vec![CpuId(3), CpuId(3)]));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_threads_rejected() {
        Team::place(&cfg(), 17, &Placement::HighLocality);
    }

    #[test]
    fn try_place_returns_typed_errors() {
        assert!(matches!(
            Team::try_place(&cfg(), 0, &Placement::HighLocality),
            Err(SimError::EmptyTeam)
        ));
        assert!(matches!(
            Team::try_place(&cfg(), 17, &Placement::Uniform),
            Err(SimError::TeamTooLarge {
                threads: 17,
                cpus: 16
            })
        ));
        assert!(matches!(
            Team::try_place(&cfg(), 2, &Placement::Explicit(vec![CpuId(1)])),
            Err(SimError::PlacementLengthMismatch {
                threads: 2,
                cpus: 1
            })
        ));
        assert!(matches!(
            Team::try_place(&cfg(), 1, &Placement::Explicit(vec![CpuId(99)])),
            Err(SimError::CpuOutOfRange { cpu: 99, .. })
        ));
        assert!(matches!(
            Team::try_place(&cfg(), 2, &Placement::Explicit(vec![CpuId(3), CpuId(3)])),
            Err(SimError::CpuReused { cpu: 3 })
        ));
    }

    #[test]
    fn chunks_cover_range_exactly() {
        for n in [0usize, 1, 7, 16, 100] {
            for parts in [1usize, 2, 3, 8] {
                let mut total = 0;
                let mut next = 0;
                for p in 0..parts {
                    let r = chunk_range(n, parts, p);
                    assert_eq!(r.start, next);
                    next = r.end;
                    total += r.len();
                }
                assert_eq!(total, n, "n={n} parts={parts}");
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..8).map(|p| chunk_range(100, 8, p).len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }
}
