//! An offline, zero-dependency stand-in for the crates.io `proptest`
//! crate.
//!
//! The build environment for this repository has no registry access,
//! so the real `proptest` cannot be resolved. This crate implements
//! the subset of its API that the repo's property tests actually use,
//! with the same names and call shapes, so the test sources read like
//! ordinary proptest and would compile against the real crate:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * range strategies (`0u8..3`, `-1.0f64..1.0`), tuples of
//!   strategies, [`collection::vec`], [`bool::ANY`], [`num`] `ANY`
//!   constants, and [`Strategy::prop_map`];
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics immediately; the case
//!   number and seed are printed so the exact inputs can be replayed
//!   (generation is a pure function of the test name and case index).
//! * **Deterministic.** There is no `PROPTEST_CASES`/env handling and
//!   no persistence; `*.proptest-regressions` files are ignored.
//! * Only the strategy combinators listed above exist.

use std::ops::Range;

/// A deterministic splitmix64 generator; the entire crate's randomness.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling (Lemire); bias is far below
        // anything a 64..4096-case property test could observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Something that can produce random values of its `Value` type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (the only combinator the
    /// repo's tests use).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Generates `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy (mirrors `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Numeric full-domain strategies (mirrors `proptest::num`).
pub mod num {
    macro_rules! any_mod {
        ($($m:ident: $t:ty),*) => {$(
            /// Full-domain strategy for the primitive of the same name.
            pub mod $m {
                use crate::{Strategy, TestRng};

                /// Generates any value of the type, uniformly.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// The full-domain strategy constant.
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize);
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector of values from `elem`, with length in `len`
    /// (half-open, like `proptest::collection::vec`).
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration (mirrors `proptest::test_runner`).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Everything a test needs, star-importable (mirrors
/// `proptest::prelude`).
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Negative-control kernels for the simulator's race detector and
/// schedule-permutation fuzzer.
///
/// A detector that never fires and a fuzzer that never diverges are
/// indistinguishable from broken ones; this module provides a kernel
/// that is *known* racy, so the campaign in `spp-bench` (and ci.sh)
/// can assert the tooling actually catches something.
pub mod racy {
    use spp_core::{MemPort, SimArray};
    use spp_runtime::{Placement, Runtime, Team};

    /// Deliberately racy parallel sum: every thread read-modify-writes
    /// one shared accumulator with no gate, no in-region barrier, and
    /// no per-thread partials. On real hardware this loses updates;
    /// under the sequential replay it "works", but the accumulation
    /// order follows the replay schedule, so the race detector must
    /// flag the conflicting accesses and a schedule permutation must
    /// change the floating-point result (addition does not
    /// reassociate).
    pub fn racy_sum<P: MemPort>(rt: &mut Runtime<P>, nthreads: usize, values: &[f64]) -> f64 {
        let team = Team::place(rt.machine.config(), nthreads, &Placement::HighLocality);
        let class = team.shared_class(rt.machine.config(), 64);
        let mut acc = SimArray::from_elem(&mut rt.machine, class, 1, 0.0f64);
        acc.set_label(&mut rt.machine, "racy_acc");
        let n = values.len();
        rt.team_fork_join(&team, |ctx| {
            for i in ctx.chunk(n) {
                ctx.update(&mut acc, 0, |a| a + values[i]);
            }
        });
        acc.host()[0]
    }

    /// Mixed-magnitude values whose sum depends visibly on
    /// accumulation order: magnitudes span 2^-30..2^30 with a dense
    /// exponent spread, so reassociating the additions (any schedule
    /// permutation of [`racy_sum`], even a single swap on a 2-thread
    /// team) changes the rounding. A small discrete magnitude set is
    /// NOT enough — block-reordered folds of values drawn from a few
    /// fixed scales frequently round to identical bits.
    pub fn adversarial_values(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = crate::TestRng::new(seed);
        (0..n)
            .map(|_| {
                let exp = rng.unit_f64() * 60.0 - 30.0;
                (rng.unit_f64() - 0.5) * exp.exp2()
            })
            .collect()
    }
}

/// FNV-1a over the test's identifying string: the per-test seed base,
/// so each property gets an independent, stable stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Assert inside a property (no shrinking: behaves like `assert!` with
/// case context added by the harness).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Define property tests. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..100, v in proptest::collection::vec(0u8..4, 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @with ($cfg) $($rest)* }
    };
    (@with ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(base.wrapping_add(case as u64));
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "[proptest shim] property {} failed at case {case} \
                             (seed base {base:#x})",
                            stringify!($name)
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{
            @with ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u8..9, y in 0u64..1, f in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert_eq!(y, 0);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u32..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|e| *e < 10));
        }

        #[test]
        fn tuples_and_map(p in (0u16..4, crate::bool::ANY).prop_map(|(a, b)| (a as u32, b))) {
            prop_assert!(p.0 < 4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 10..20);
        let one: Vec<u64> = crate::Strategy::generate(&strat, &mut crate::TestRng::new(42));
        let two: Vec<u64> = crate::Strategy::generate(&strat, &mut crate::TestRng::new(42));
        assert_eq!(one, two);
    }

    #[test]
    fn full_domain_u64_hits_high_bits() {
        let mut rng = crate::TestRng::new(7);
        let any = crate::num::u64::ANY;
        let saw_high = (0..64).any(|_| crate::Strategy::generate(&any, &mut rng) > u64::MAX / 2);
        assert!(saw_high);
    }

    #[test]
    fn racy_sum_is_flagged_by_the_detector() {
        use spp_core::Machine;
        use spp_runtime::Runtime;
        let mut rt = Runtime::new(Machine::spp1000(1).with_race_detection());
        let values = crate::racy::adversarial_values(64, 1);
        crate::racy::racy_sum(&mut rt, 4, &values);
        let report = rt.machine.race_report();
        assert!(report.total_races > 0, "negative control not flagged");
        assert!(
            report.races.iter().any(|r| r.array == "racy_acc"),
            "findings resolve to the accumulator: {report}"
        );
    }

    #[test]
    fn racy_sum_diverges_under_a_permuted_schedule() {
        use spp_runtime::{Runtime, SchedulePolicy};
        let values = crate::racy::adversarial_values(256, 2);
        let identity = crate::racy::racy_sum(&mut Runtime::spp1000(1), 8, &values);
        let reversed = crate::racy::racy_sum(
            &mut Runtime::spp1000(1).with_schedule(SchedulePolicy::Reversed),
            8,
            &values,
        );
        assert_ne!(
            identity.to_bits(),
            reversed.to_bits(),
            "schedule permutation must change the racy sum"
        );
    }
}
