//! Unstructured triangular meshes.
//!
//! The paper's data sets are exactly structured triangulations: the
//! small mesh has 46 545 points / 92 160 elements = a 320x144 quad
//! grid split into triangles (321*145 = 46 545), and the large mesh
//! 263 169 / 524 288 = 512x512 (513*513 = 263 169). We generate those
//! meshes, then Morton-order points and elements "to enhance cache
//! locality for the gathers and scatters" (§5.2.1) — after reordering
//! the mesh is processed exactly like a fully unstructured one.

use spp_kernels::{morton2, sort_order_by_key};

/// A triangular mesh: point coordinates plus element connectivity.
#[derive(Debug, Clone)]
pub struct Mesh {
    /// Point x coordinates.
    pub px: Vec<f64>,
    /// Point y coordinates.
    pub py: Vec<f64>,
    /// Element vertex indices, 3 per element.
    pub tri: Vec<[u32; 3]>,
    /// Twice the signed area of each element (positive = CCW).
    pub area2: Vec<f64>,
    /// Lumped mass (1/3 of adjacent element areas) per point.
    pub lumped_mass: Vec<f64>,
    /// Lumped outward boundary normal per point (`sum of L/2 * n` over
    /// incident boundary edges; zero for interior points). Carries the
    /// wall-pressure boundary integral of the weak form.
    pub bnormal: Vec<[f64; 2]>,
    /// Domain extent in x.
    pub width: f64,
    /// Domain extent in y.
    pub height: f64,
}

impl Mesh {
    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.px.len()
    }

    /// Number of elements.
    pub fn num_elements(&self) -> usize {
        self.tri.len()
    }

    /// The paper's small mesh: 46 545 points, 92 160 elements.
    pub fn small() -> Self {
        structured(320, 144)
    }

    /// The paper's large mesh: 263 169 points, 524 288 elements.
    pub fn large() -> Self {
        structured(512, 512)
    }

    /// A tiny test mesh.
    pub fn tiny() -> Self {
        structured(16, 12)
    }
}

/// Build a structured triangulation of an `nx x ny` quad grid (unit
/// squares), Morton-ordered.
pub fn structured(nx: usize, ny: usize) -> Mesh {
    structured_with(nx, ny, true)
}

/// Row-major (non-Morton) variant, kept for the `ablation_morton`
/// bench that quantifies §5.2.1's cache-locality claim.
pub fn structured_raw(nx: usize, ny: usize) -> Mesh {
    structured_with(nx, ny, false)
}

/// Randomly permuted variant: points and elements in arbitrary order,
/// which is what a real unstructured mesh generator emits before any
/// reordering — the honest baseline for the Morton ablation (row-major
/// structured order is itself already cache-friendly).
pub fn structured_shuffled(nx: usize, ny: usize, seed: u64) -> Mesh {
    let m = structured_with(nx, ny, false);
    let n = m.num_points();
    let mut rng = spp_kernels::Rng64::new(seed);
    // Fisher-Yates permutation of point labels.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.below(i + 1));
    }
    let mut inv = vec![0u32; n];
    for (new, old) in perm.iter().enumerate() {
        inv[*old as usize] = new as u32;
    }
    let grab = |src: &[f64]| perm.iter().map(|o| src[*o as usize]).collect::<Vec<_>>();
    let px = grab(&m.px);
    let py = grab(&m.py);
    let mut tri: Vec<[u32; 3]> = m
        .tri
        .iter()
        .map(|t| [inv[t[0] as usize], inv[t[1] as usize], inv[t[2] as usize]])
        .collect();
    // Shuffle element order too.
    for i in (1..tri.len()).rev() {
        tri.swap(i, rng.below(i + 1));
    }
    let area2: Vec<f64> = tri
        .iter()
        .map(|t| {
            let (ax, ay) = (px[t[0] as usize], py[t[0] as usize]);
            let (bx, by) = (px[t[1] as usize], py[t[1] as usize]);
            let (cx, cy) = (px[t[2] as usize], py[t[2] as usize]);
            (bx - ax) * (cy - ay) - (cx - ax) * (by - ay)
        })
        .collect();
    let mut lumped_mass = vec![0.0; n];
    for (t, a2) in tri.iter().zip(&area2) {
        for v in t {
            lumped_mass[*v as usize] += a2 / 6.0;
        }
    }
    let bnormal = perm.iter().map(|o| m.bnormal[*o as usize]).collect();
    Mesh {
        px,
        py,
        tri,
        area2,
        lumped_mass,
        bnormal,
        width: m.width,
        height: m.height,
    }
}

fn structured_with(nx: usize, ny: usize, morton: bool) -> Mesh {
    let npx = nx + 1;
    let npy = ny + 1;
    let n = npx * npy;
    // Raw lattice points.
    let mut px = Vec::with_capacity(n);
    let mut py = Vec::with_capacity(n);
    for j in 0..npy {
        for i in 0..npx {
            px.push(i as f64);
            py.push(j as f64);
        }
    }
    // Raw connectivity (two CCW triangles per quad).
    let mut tri: Vec<[u32; 3]> = Vec::with_capacity(2 * nx * ny);
    let p = |i: usize, j: usize| (i + npx * j) as u32;
    for j in 0..ny {
        for i in 0..nx {
            tri.push([p(i, j), p(i + 1, j), p(i, j + 1)]);
            tri.push([p(i + 1, j), p(i + 1, j + 1), p(i, j + 1)]);
        }
    }

    // Morton-reorder points (skipped by the raw/ablation variant).
    let (px, py) = if morton {
        let keys: Vec<u64> = (0..n)
            .map(|k| morton2(px[k] as u32, py[k] as u32))
            .collect();
        let order = sort_order_by_key(&keys); // order[new] = old
        let mut inv = vec![0u32; n];
        for (new, old) in order.iter().enumerate() {
            inv[*old as usize] = new as u32;
        }
        let npx: Vec<f64> = order.iter().map(|o| px[*o as usize]).collect();
        let npy: Vec<f64> = order.iter().map(|o| py[*o as usize]).collect();
        for t in &mut tri {
            for v in t.iter_mut() {
                *v = inv[*v as usize];
            }
        }
        (npx, npy)
    } else {
        (px, py)
    };
    // Morton-reorder elements by centroid.
    let tri: Vec<[u32; 3]> = if morton {
        let ekeys: Vec<u64> = tri
            .iter()
            .map(|t| {
                let cx = (px[t[0] as usize] + px[t[1] as usize] + px[t[2] as usize]) / 3.0;
                let cy = (py[t[0] as usize] + py[t[1] as usize] + py[t[2] as usize]) / 3.0;
                morton2(cx as u32, cy as u32)
            })
            .collect();
        let eorder = sort_order_by_key(&ekeys);
        eorder.iter().map(|o| tri[*o as usize]).collect()
    } else {
        tri
    };

    // Geometry.
    let area2: Vec<f64> = tri
        .iter()
        .map(|t| {
            let (ax, ay) = (px[t[0] as usize], py[t[0] as usize]);
            let (bx, by) = (px[t[1] as usize], py[t[1] as usize]);
            let (cx, cy) = (px[t[2] as usize], py[t[2] as usize]);
            (bx - ax) * (cy - ay) - (cx - ax) * (by - ay)
        })
        .collect();
    let mut lumped_mass = vec![0.0; n];
    for (t, a2) in tri.iter().zip(&area2) {
        for v in t {
            lumped_mass[*v as usize] += a2 / 6.0; // area/3
        }
    }
    // Lumped boundary normals: walk the four domain sides (each
    // boundary edge has unit length).
    let mut bnormal = vec![[0.0f64; 2]; n];
    for k in 0..n {
        let (x, y) = (px[k], py[k]);
        let frac = |on_corner: bool| if on_corner { 0.5 } else { 1.0 };
        if y == 0.0 {
            bnormal[k][1] -= frac(x == 0.0 || x == nx as f64);
        }
        if y == ny as f64 {
            bnormal[k][1] += frac(x == 0.0 || x == nx as f64);
        }
        if x == 0.0 {
            bnormal[k][0] -= frac(y == 0.0 || y == ny as f64);
        }
        if x == nx as f64 {
            bnormal[k][0] += frac(y == 0.0 || y == ny as f64);
        }
    }
    Mesh {
        px,
        py,
        tri,
        area2,
        lumped_mass,
        bnormal,
        width: nx as f64,
        height: ny as f64,
    }
}

/// Shape-function gradient contributions for a linear triangle:
/// `grad N_i = (b_i, c_i) / area2` with
/// `b_i = y_{i+1} - y_{i+2}`, `c_i = x_{i+2} - x_{i+1}`.
pub fn shape_gradients(mesh: &Mesh, e: usize) -> [[f64; 2]; 3] {
    let t = mesh.tri[e];
    let x = [
        mesh.px[t[0] as usize],
        mesh.px[t[1] as usize],
        mesh.px[t[2] as usize],
    ];
    let y = [
        mesh.py[t[0] as usize],
        mesh.py[t[1] as usize],
        mesh.py[t[2] as usize],
    ];
    let mut g = [[0.0; 2]; 3];
    for (i, gi) in g.iter_mut().enumerate() {
        let j = (i + 1) % 3;
        let k = (i + 2) % 3;
        gi[0] = y[j] - y[k];
        gi[1] = x[k] - x[j];
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_sizes_exact() {
        let s = Mesh::small();
        assert_eq!(s.num_points(), 46_545);
        assert_eq!(s.num_elements(), 92_160);
        let l = Mesh::large();
        assert_eq!(l.num_points(), 263_169);
        assert_eq!(l.num_elements(), 524_288);
    }

    #[test]
    fn about_two_elements_per_point() {
        // Paper: "there is about two elements to every point".
        let m = Mesh::small();
        let ratio = m.num_elements() as f64 / m.num_points() as f64;
        assert!((1.9..=2.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn all_elements_positively_oriented() {
        let m = Mesh::tiny();
        for (e, a2) in m.area2.iter().enumerate() {
            assert!(*a2 > 0.0, "element {e} has area2 = {a2}");
        }
    }

    #[test]
    fn total_area_matches_domain() {
        let m = Mesh::tiny();
        let total: f64 = m.area2.iter().map(|a| a / 2.0).sum();
        assert!((total - 16.0 * 12.0).abs() < 1e-9);
        let mass: f64 = m.lumped_mass.iter().sum();
        assert!((mass - 192.0).abs() < 1e-9, "lumped mass sums to area");
    }

    #[test]
    fn connectivity_indices_in_range() {
        let m = Mesh::tiny();
        for t in &m.tri {
            for v in t {
                assert!((*v as usize) < m.num_points());
            }
        }
    }

    #[test]
    fn shape_gradients_sum_to_zero() {
        let m = Mesh::tiny();
        for e in (0..m.num_elements()).step_by(17) {
            let g = shape_gradients(&m, e);
            for d in 0..2 {
                let s: f64 = g.iter().map(|gi| gi[d]).sum();
                assert!(s.abs() < 1e-12, "element {e} dim {d}: {s}");
            }
        }
    }

    #[test]
    fn morton_ordering_improves_vertex_locality() {
        // Consecutive elements should reference nearby point indices.
        let m = Mesh::small();
        let spans: Vec<u32> = m
            .tri
            .iter()
            .map(|t| t.iter().max().unwrap() - t.iter().min().unwrap())
            .collect();
        let avg = spans.iter().map(|s| *s as f64).sum::<f64>() / spans.len() as f64;
        // Row-major ordering gives an average span of ~322 (the row
        // width); Morton keeps most triangles in small neighborhoods,
        // crossing wide index gaps only at block boundaries.
        assert!(avg < 280.0, "average vertex index span = {avg}");
    }

    #[test]
    fn shuffled_mesh_preserves_geometry() {
        let a = structured(16, 12);
        let b = structured_shuffled(16, 12, 7);
        assert_eq!(a.num_points(), b.num_points());
        assert_eq!(a.num_elements(), b.num_elements());
        let area_a: f64 = a.area2.iter().sum();
        let area_b: f64 = b.area2.iter().map(|v| v.abs()).sum();
        assert!((area_a - area_b).abs() < 1e-9, "total area changed");
        let mass_a: f64 = a.lumped_mass.iter().sum();
        let mass_b: f64 = b.lumped_mass.iter().sum();
        assert!((mass_a - mass_b).abs() < 1e-9);
    }

    #[test]
    fn max_elements_per_point_is_six_or_seven() {
        // Paper: "an average (maximum) of 6 (7) elements communicating
        // with every point" — for our structured triangulation the
        // interior valence is 6.
        let m = Mesh::tiny();
        let mut count = vec![0u32; m.num_points()];
        for t in &m.tri {
            for v in t {
                count[*v as usize] += 1;
            }
        }
        let max = *count.iter().max().unwrap();
        assert!(max <= 7, "max valence = {max}");
        let interior_avg = count.iter().filter(|c| **c == 6).count();
        assert!(interior_avg > m.num_points() / 2);
    }
}
