//! Shared-memory parallel FEM on the simulated SPP-1000 (paper §5.2),
//! in the *two codings* Figure 7 compares ("Curve small2 was computed
//! using a second coding of the same numerics"):
//!
//! * [`Coding::ScatterAdd`] — the element loop scatter-adds residuals
//!   straight into shared point arrays (the "scatter-add problem" the
//!   paper names as the third, critical class of global
//!   communication);
//! * [`Coding::Gather`] — the element loop writes its contributions to
//!   element-local storage and a point loop gathers them through the
//!   point-to-element adjacency (no read-modify-write sharing, more
//!   irregular reads).

use crate::host::{self, flops};
use crate::mesh::Mesh;
use spp_core::{Cycles, MemPort, SimArray};
use spp_runtime::{Runtime, Team, ThreadCtx};

/// Extra cycles per divide/sqrt (PA-7100 FDIV/FSQRT latency beyond the
/// counted flop).
pub const DIVSQRT_EXTRA_CYCLES: u64 = 13;
/// Integer/index overhead cycles per element (unstructured
/// addressing: connectivity decode, loop control).
pub const ELEMENT_OVERHEAD_CYCLES: u64 = 130;

/// Which coding of the numerics to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coding {
    /// Element loop scatter-adds into shared residual arrays.
    ScatterAdd,
    /// Element loop stores locally; point loop gathers.
    Gather,
}

/// Cumulative result of a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunReport {
    /// Elapsed simulated cycles.
    pub elapsed: Cycles,
    /// Point updates performed.
    pub point_updates: u64,
    /// Steps executed.
    pub steps: usize,
}

impl RunReport {
    /// Point updates per microsecond (the paper's §5.2.2 metric).
    pub fn updates_per_us(&self) -> f64 {
        if self.elapsed == 0 {
            0.0
        } else {
            self.point_updates as f64 / (self.elapsed as f64 / 100.0)
        }
    }

    /// "Useful Mflop/s" via the paper's own conversion factor of 437
    /// flops per point update.
    pub fn useful_mflops(&self) -> f64 {
        self.updates_per_us() * flops::PAPER_FLOPS_PER_POINT_UPDATE
    }
}

/// FEM state in simulated shared memory.
pub struct SharedFem {
    /// The (host) mesh: geometry is immutable, so coordinates and
    /// connectivity live in shared SimArrays below.
    pub mesh: Mesh,
    coding: Coding,
    // Geometry / connectivity. Following the F77 original, per-point
    // records are interleaved so one 32-byte line holds one point's
    // record: `xy(2, n)`, `u(4, n)`, `r(4, n)`.
    xy: SimArray<f64>,
    tri: SimArray<u32>,
    area2: SimArray<f64>,
    lmass: SimArray<f64>,
    bn: SimArray<f64>,
    // State `u(4, n)`: [rho, mu, mv, E] per point.
    u: SimArray<f64>,
    // Scatter-add coding: shared residual array `r(4, n)`.
    res: SimArray<f64>,
    // Gather coding: per-element contributions (3 vertices x 4 vars)
    // plus the point-to-element adjacency (elem * 4 + slot, CSR).
    eres: SimArray<f64>,
    adj_off: SimArray<u32>,
    adj: SimArray<u32>,
    // Per-thread partial maxima for the timestep reduction.
    partial_speed: SimArray<f64>,
    /// Element coloring for the scatter-add coding: elements within
    /// one color share no vertex, so each color's scatter-adds are
    /// write-disjoint across threads; colors run as barrier-separated
    /// phases of one region. The uncolored element loop raced on
    /// shared vertices (the race detector flags it).
    colors: Vec<Vec<usize>>,
    /// Current timestep (deferred CFL: the reduction is fused into the
    /// previous step's point-update loop, as the paper's "tightest
    /// serial coding" does).
    dt: f64,
    /// Current global max signal speed.
    max_speed: f64,
    /// Whether the residual arrays are already zero (fused clearing).
    res_clean: bool,
}

impl SharedFem {
    /// Load a mesh and the pulse initial condition, placed for `team`.
    pub fn new<P: MemPort>(rt: &mut Runtime<P>, mesh: Mesh, coding: Coding, team: &Team) -> Self {
        let s0 = host::State::pulse(&mesh);
        let n = mesh.num_points();
        let ne = mesh.num_elements();
        let m = &mut rt.machine;
        let pc = team.shared_class(m.config(), n as u64 * 8);
        let ec = team.shared_class(m.config(), ne as u64 * 8);

        // Point-to-element adjacency (encoded as elem * 4 + slot).
        let mut counts = vec![0u32; n + 1];
        for t in &mesh.tri {
            for v in t {
                counts[*v as usize + 1] += 1;
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut adj = vec![0u32; 3 * ne];
        let mut cursor = counts.clone();
        for (e, t) in mesh.tri.iter().enumerate() {
            for (slot, v) in t.iter().enumerate() {
                adj[cursor[*v as usize] as usize] = (e * 4 + slot) as u32;
                cursor[*v as usize] += 1;
            }
        }

        let tri_flat: Vec<u32> = mesh.tri.iter().flatten().copied().collect();
        let mut xy = Vec::with_capacity(2 * n);
        for i in 0..n {
            xy.push(mesh.px[i]);
            xy.push(mesh.py[i]);
        }
        let mut u = Vec::with_capacity(4 * n);
        for i in 0..n {
            u.extend_from_slice(&[s0.rho[i], s0.mu[i], s0.mv[i], s0.e[i]]);
        }
        let bn: Vec<f64> = mesh.bnormal.iter().flatten().copied().collect();
        let sim = SharedFem {
            xy: SimArray::new(m, pc, xy),
            tri: SimArray::new(m, ec, tri_flat),
            area2: SimArray::new(m, ec, mesh.area2.clone()),
            lmass: SimArray::new(m, pc, mesh.lumped_mass.clone()),
            bn: SimArray::new(m, pc, bn),
            u: SimArray::new(m, pc, u),
            res: SimArray::from_elem(m, pc, 4 * n, 0.0),
            eres: SimArray::from_elem(m, ec, 12 * ne, 0.0),
            adj_off: SimArray::new(m, pc, counts),
            adj: SimArray::new(m, ec, adj),
            partial_speed: SimArray::from_elem(
                m,
                spp_core::MemClass::NearShared {
                    node: spp_core::NodeId(0),
                },
                team.len().max(1),
                0.0,
            ),
            dt: 0.0,
            max_speed: {
                let s = host::State::pulse(&mesh);
                (0..mesh.num_points())
                    .map(|i| s.signal_speed(i))
                    .fold(0.0, f64::max)
            },
            res_clean: false,
            colors: color_elements(&mesh),
            coding,
            mesh,
        };
        sim.res.set_label(m, "res");
        sim.u.set_label(m, "u");
        sim.eres.set_label(m, "eres");
        sim
    }

    /// Host view of the current state (validation).
    pub fn state(&self) -> host::State {
        let n = self.mesh.num_points();
        let u = self.u.host();
        host::State {
            rho: (0..n).map(|i| u[4 * i]).collect(),
            mu: (0..n).map(|i| u[4 * i + 1]).collect(),
            mv: (0..n).map(|i| u[4 * i + 2]).collect(),
            e: (0..n).map(|i| u[4 * i + 3]).collect(),
        }
    }

    /// One forward-Euler step. Returns (elapsed cycles, point updates).
    pub fn step<P: MemPort>(
        &mut self,
        rt: &mut Runtime<P>,
        team: &Team,
        cfl: f64,
    ) -> (Cycles, u64) {
        self.step_profiled(rt, team, cfl, None)
    }

    /// One step, optionally recording each phase in a CXpa-style
    /// [`spp_runtime::Profile`].
    pub fn step_profiled<P: MemPort>(
        &mut self,
        rt: &mut Runtime<P>,
        team: &Team,
        cfl: f64,
        mut prof: Option<&mut spp_runtime::Profile>,
    ) -> (Cycles, u64) {
        let track = |prof: &mut Option<&mut spp_runtime::Profile>,
                     name: &str,
                     rep: &spp_runtime::RegionReport| {
            if let Some(p) = prof.as_deref_mut() {
                p.record(name, rep);
            }
        };
        let n = self.mesh.num_points();
        let ne = self.mesh.num_elements();
        let nt = team.len();
        let mut elapsed = 0u64;

        // The timestep reduction is deferred: the previous step's
        // point-update loop computed per-thread maxima over the fresh
        // state (class-1 communication at negligible extra cost).
        self.dt = cfl / self.max_speed.max(1e-12);
        let dt = self.dt;
        let alpha = 0.7 * self.max_speed;

        // Residual clearing is fused into the point update (the lines
        // are cache-hot there); only the very first step pays a
        // dedicated clear.
        if self.coding == Coding::ScatterAdd && !self.res_clean {
            let res = &mut self.res;
            let rep = rt.team_fork_join(team, |ctx| {
                let r = ctx.chunk(n);
                ctx.fill_run(res, 4 * r.start..4 * r.end, 0.0);
            });
            track(&mut prof, "clear", &rep);
            elapsed += rep.elapsed;
        }

        // Phase 3: element loop (class-2 gather + class-3 scatter-add).
        {
            let (xy, tri, area2) = (&self.xy, &self.tri, &self.area2);
            let uarr = &self.u;
            let res = &mut self.res;
            let eres = &mut self.eres;
            let rep = match self.coding {
                // Scatter-add runs the coloring as barrier-separated
                // phases: within a color no two elements share a
                // vertex, so the `res` read-modify-writes are disjoint
                // across threads, and the barriers order the colors.
                Coding::ScatterAdd => {
                    let colors = &self.colors;
                    rt.team_fork_join_phases(team, colors.len(), |ctx, phase| {
                        let group = &colors[phase];
                        let r = ctx.chunk(group.len());
                        for &el in &group[r] {
                            let (v, contrib) =
                                element_contrib(ctx, tri, xy, area2, uarr, el, alpha);
                            for (i, c) in contrib.iter().enumerate() {
                                for (k, val) in c.iter().enumerate() {
                                    ctx.update(res, 4 * v[i] + k, |old| old + val);
                                }
                            }
                        }
                    })
                }
                Coding::Gather => rt.team_fork_join(team, |ctx| {
                    for el in ctx.chunk(ne) {
                        let (_, contrib) = element_contrib(ctx, tri, xy, area2, uarr, el, alpha);
                        for (i, c) in contrib.iter().enumerate() {
                            for (k, val) in c.iter().enumerate() {
                                ctx.write(eres, 12 * el + 4 * i + k, *val);
                            }
                        }
                    }
                }),
            };
            track(&mut prof, "element", &rep);
            elapsed += rep.elapsed;
        }

        // Phase 4: point update (lumped mass + wall-pressure boundary
        // term), fused with residual clearing and the next step's
        // signal-speed reduction.
        {
            let (lmass, bn) = (&self.lmass, &self.bn);
            let uarr = &mut self.u;
            let res = &mut self.res;
            let (eres, adj_off, adj) = (&self.eres, &self.adj_off, &self.adj);
            let partial = &mut self.partial_speed;
            let coding = self.coding;
            let rep = rt.team_fork_join(team, |ctx| {
                let mut local_max = 0.0f64;
                let mut ubuf: Vec<f64> = Vec::with_capacity(4);
                for i in ctx.chunk(n) {
                    let mut r = [0.0f64; 4];
                    match coding {
                        Coding::ScatterAdd => {
                            for (k, rk) in r.iter_mut().enumerate() {
                                *rk = ctx.read(res, 4 * i + k);
                                ctx.write(res, 4 * i + k, 0.0);
                            }
                        }
                        Coding::Gather => {
                            let s = ctx.read(adj_off, i) as usize;
                            let t = ctx.read(adj_off, i + 1) as usize;
                            for a in s..t {
                                let code = ctx.read(adj, a) as usize;
                                let (el, slot) = (code / 4, code % 4);
                                for (k, rk) in r.iter_mut().enumerate() {
                                    *rk += ctx.read(eres, 12 * el + 4 * slot + k);
                                    ctx.flops(1);
                                }
                            }
                        }
                    }
                    ubuf.clear();
                    ctx.read_run(uarr, 4 * i..4 * i + 4, &mut ubuf);
                    let (rho_v, mu_v, mv_v, e_v) = (ubuf[0], ubuf[1], ubuf[2], ubuf[3]);
                    let p = ((host::GAMMA - 1.0)
                        * (e_v - 0.5 * (mu_v * mu_v + mv_v * mv_v) / rho_v.max(1e-12)))
                    .max(1e-12);
                    let f = dt / ctx.read(lmass, i);
                    let bx = ctx.read(bn, 2 * i);
                    let by = ctx.read(bn, 2 * i + 1);
                    let nrho = rho_v + f * r[0];
                    let nmu = mu_v + f * (r[1] - p * bx);
                    let nmv = mv_v + f * (r[2] - p * by);
                    let ne_ = e_v + f * r[3];
                    ctx.write_run(uarr, 4 * i, &[nrho, nmu, nmv, ne_]);
                    local_max = local_max.max(signal_speed(nrho, nmu, nmv, ne_));
                    ctx.flops(flops::POINT + 8 + flops::SPEED);
                    // pressure + 1/m divides, plus the speed's sqrt/div.
                    ctx.cycles((2 + flops::SPEED_DIVSQRT) * DIVSQRT_EXTRA_CYCLES);
                }
                let tid = ctx.tid;
                ctx.write(partial, tid, local_max);
            });
            track(&mut prof, "point", &rep);
            elapsed += rep.elapsed;
            self.res_clean = true;
        }

        // Tiny serial combine of the per-thread maxima (for the next
        // step's dt).
        {
            let partial = &self.partial_speed;
            let mut global = 0.0f64;
            let g = &mut global;
            let rep = rt.team_fork_join(team, |ctx| {
                if ctx.tid == 0 {
                    for t in 0..nt {
                        *g = g.max(ctx.read(partial, t));
                        ctx.flops(1);
                    }
                }
            });
            track(&mut prof, "reduce", &rep);
            elapsed += rep.elapsed;
            self.max_speed = global;
        }

        (elapsed, n as u64)
    }

    /// Run `steps` timesteps at CFL `cfl`.
    pub fn run<P: MemPort>(
        &mut self,
        rt: &mut Runtime<P>,
        team: &Team,
        cfl: f64,
        steps: usize,
    ) -> RunReport {
        let mut out = RunReport {
            steps,
            ..Default::default()
        };
        for _ in 0..steps {
            let (c, p) = self.step(rt, team, cfl);
            out.elapsed += c;
            out.point_updates += p;
        }
        out
    }
}

/// Gather one element's connectivity and vertex records (one line per
/// point for coordinates, one for state) and evaluate the residual
/// kernel, charging the element's flops and overhead.
#[inline]
fn element_contrib<P: MemPort>(
    ctx: &mut ThreadCtx<'_, P>,
    tri: &SimArray<u32>,
    xy: &SimArray<f64>,
    area2: &SimArray<f64>,
    uarr: &SimArray<f64>,
    el: usize,
    alpha: f64,
) -> ([usize; 3], [[f64; 4]; 3]) {
    let v: [usize; 3] = std::array::from_fn(|i| ctx.read(tri, 3 * el + i) as usize);
    let x: [f64; 3] = std::array::from_fn(|i| ctx.read(xy, 2 * v[i]));
    let y: [f64; 3] = std::array::from_fn(|i| ctx.read(xy, 2 * v[i] + 1));
    let u: [[f64; 4]; 3] =
        std::array::from_fn(|i| std::array::from_fn(|k| ctx.read(uarr, 4 * v[i] + k)));
    let a2 = ctx.read(area2, el);
    let contrib = residual_kernel(x, y, u, a2, alpha);
    ctx.flops(flops::ELEMENT);
    ctx.cycles(flops::ELEMENT_DIVSQRT * DIVSQRT_EXTRA_CYCLES + ELEMENT_OVERHEAD_CYCLES);
    (v, contrib)
}

/// Greedy element coloring: assign each element the lowest color not
/// already used by an element sharing one of its vertices. Bounded by
/// the maximum vertex degree (+1), far below the 128-color mask.
fn color_elements(mesh: &Mesh) -> Vec<Vec<usize>> {
    let mut vertex_used: Vec<u128> = vec![0; mesh.num_points()];
    let mut colors: Vec<Vec<usize>> = Vec::new();
    for (e, t) in mesh.tri.iter().enumerate() {
        let used = t.iter().fold(0u128, |m, &v| m | vertex_used[v as usize]);
        assert!(used != u128::MAX, "element {e}: more than 128 colors");
        let c = (!used).trailing_zeros() as usize;
        if c >= colors.len() {
            colors.push(Vec::new());
        }
        colors[c].push(e);
        for &v in t {
            vertex_used[v as usize] |= 1 << c;
        }
    }
    colors
}

#[inline]
fn signal_speed(rho: f64, mu: f64, mv: f64, e: f64) -> f64 {
    let rho = rho.max(1e-12);
    let v = (mu * mu + mv * mv).sqrt() / rho;
    let p = ((host::GAMMA - 1.0) * (e - 0.5 * (mu * mu + mv * mv) / rho)).max(1e-12);
    v + (host::GAMMA * p / rho).sqrt()
}

/// The element residual kernel on gathered data (identical arithmetic
/// to [`host::element_residual`]).
#[inline]
fn residual_kernel(
    x: [f64; 3],
    y: [f64; 3],
    u: [[f64; 4]; 3],
    a2: f64,
    alpha: f64,
) -> [[f64; 4]; 3] {
    let ue: [f64; 4] = std::array::from_fn(|k| (u[0][k] + u[1][k] + u[2][k]) / 3.0);
    let (f, g) = host::fluxes(ue);
    let mut grads = [[0.0f64; 2]; 3];
    for (i, gi) in grads.iter_mut().enumerate() {
        let j = (i + 1) % 3;
        let k = (i + 2) % 3;
        gi[0] = y[j] - y[k];
        gi[1] = x[k] - x[j];
    }
    std::array::from_fn(|i| {
        std::array::from_fn(|k| {
            let flux_part = 0.5 * (grads[i][0] * f[k] + grads[i][1] * g[k]);
            let diss = alpha * (a2 / 6.0) * (ue[k] - u[i][k]);
            flux_part + diss
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spp_runtime::Placement;

    fn sim(threads: usize, coding: Coding) -> (Runtime, SharedFem, Team) {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), threads, &Placement::HighLocality);
        let f = SharedFem::new(&mut rt, Mesh::tiny(), coding, &team);
        (rt, f, team)
    }

    #[test]
    fn profiled_step_records_every_phase() {
        let (mut rt, mut f, team) = sim(4, Coding::ScatterAdd);
        let mut prof = spp_runtime::Profile::new();
        let (elapsed, _) = f.step_profiled(&mut rt, &team, 0.3, Some(&mut prof));
        let names: Vec<&str> = prof.regions().iter().map(|r| r.name.as_str()).collect();
        // The dedicated clear runs only on the first scatter-add step.
        for want in ["clear", "element", "point", "reduce"] {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
        assert_eq!(prof.total_elapsed(), elapsed, "profile covers the step");
    }

    #[test]
    fn scatter_coding_matches_host() {
        let (mut rt, mut f, team) = sim(1, Coding::ScatterAdd);
        let mesh = Mesh::tiny();
        let mut s = host::State::pulse(&mesh);
        for _ in 0..2 {
            f.step(&mut rt, &team, 0.3);
            let dt = host::timestep(&s, 0.3);
            host::step(&mesh, &mut s, dt);
        }
        let sim_s = f.state();
        for i in (0..mesh.num_points()).step_by(13) {
            assert!(
                (sim_s.rho[i] - s.rho[i]).abs() < 1e-9,
                "rho[{i}]: {} vs {}",
                sim_s.rho[i],
                s.rho[i]
            );
            assert!((sim_s.e[i] - s.e[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn gather_coding_same_numerics() {
        let (mut rt_a, mut a, team_a) = sim(2, Coding::ScatterAdd);
        let (mut rt_b, mut b, team_b) = sim(2, Coding::Gather);
        for _ in 0..2 {
            a.step(&mut rt_a, &team_a, 0.3);
            b.step(&mut rt_b, &team_b, 0.3);
        }
        let sa = a.state();
        let sb = b.state();
        for i in (0..sa.rho.len()).step_by(7) {
            assert!(
                (sa.rho[i] - sb.rho[i]).abs() < 1e-12,
                "codings diverge at {i}"
            );
            assert!((sa.mu[i] - sb.mu[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_thread_physics_stable() {
        let (mut rt1, mut f1, team1) = sim(1, Coding::ScatterAdd);
        let (mut rt8, mut f8, team8) = sim(8, Coding::ScatterAdd);
        for _ in 0..2 {
            f1.step(&mut rt1, &team1, 0.3);
            f8.step(&mut rt8, &team8, 0.3);
        }
        let a = f1.state();
        let b = f8.state();
        for i in (0..a.rho.len()).step_by(11) {
            // Scatter-add ordering differs across thread counts.
            assert!((a.rho[i] - b.rho[i]).abs() < 1e-9, "point {i}");
        }
    }

    #[test]
    fn speedup_with_threads() {
        let mesh = crate::mesh::structured(48, 48);
        let mut rt1 = Runtime::spp1000(2);
        let team1 = Team::place(rt1.machine.config(), 1, &Placement::HighLocality);
        let mut f1 = SharedFem::new(&mut rt1, mesh.clone(), Coding::ScatterAdd, &team1);
        let r1 = f1.run(&mut rt1, &team1, 0.3, 1);
        let mut rt8 = Runtime::spp1000(2);
        let team8 = Team::place(rt8.machine.config(), 8, &Placement::HighLocality);
        let mut f8 = SharedFem::new(&mut rt8, mesh, Coding::ScatterAdd, &team8);
        let r8 = f8.run(&mut rt8, &team8, 0.3, 1);
        let s = r1.elapsed as f64 / r8.elapsed as f64;
        assert!(s > 4.0, "8-thread speedup = {s}");
    }

    #[test]
    fn coloring_partitions_elements_without_shared_vertices() {
        let mesh = crate::mesh::structured(12, 9);
        let colors = color_elements(&mesh);
        let mut seen = vec![false; mesh.num_elements()];
        for group in &colors {
            let mut verts = std::collections::HashSet::new();
            for &e in group {
                assert!(!seen[e], "element {e} colored twice");
                seen[e] = true;
                for &v in &mesh.tri[e] {
                    assert!(verts.insert(v), "color shares vertex {v}");
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "coloring must cover every element");
        assert!(colors.len() < 32, "{} colors is unreasonable", colors.len());
    }

    #[test]
    fn report_metrics() {
        let (mut rt, mut f, team) = sim(2, Coding::ScatterAdd);
        let r = f.run(&mut rt, &team, 0.3, 2);
        assert_eq!(r.point_updates, 2 * 17 * 13);
        assert!(r.updates_per_us() > 0.0);
        assert!(
            (r.useful_mflops() / r.updates_per_us() - 437.0).abs() < 1e-9,
            "conversion factor"
        );
    }
}
