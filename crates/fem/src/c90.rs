//! Cray C90 baseline for the FEM code: §5.2.2 reports "the algorithm
//! optimized for the CRI C90 runs at 0.57 point updates/microsecond
//! ... Thus we claim 250 Mflop/s" (the hpm monitor showed 293, the
//! difference being redundant flux work introduced to vectorize).

use crate::host::flops::PAPER_FLOPS_PER_POINT_UPDATE;
use crate::mesh::Mesh;
use c90_model::{LoopSpec, C90};

/// Modelled C90 FEM execution.
#[derive(Debug, Clone, Copy)]
pub struct C90FemResult {
    /// Point updates per microsecond.
    pub updates_per_us: f64,
    /// Useful Mflop/s via the paper's 437 flops/update conversion.
    pub useful_mflops: f64,
}

/// Price one timestep on a C90 head.
pub fn run_c90(mesh: &Mesh) -> C90FemResult {
    let mut c = C90::new();
    // Element loop: vectorized with gathered vertex data and
    // scattered residuals (the code vectorized by accepting redundant
    // flux computation — efficiency below 1 reflects that).
    c.vloop(
        mesh.num_elements() as u64,
        &LoopSpec {
            flops: PAPER_FLOPS_PER_POINT_UPDATE / 2.0, // ~2 elements/point
            contig_refs: 8.0,
            gathers: 15.0,
            scatters: 12.0,
            efficiency: 0.85,
        },
    );
    // Point loop: dense update + the timestep reduction.
    c.vloop(mesh.num_points() as u64, &LoopSpec::dense(24.0, 10.0));
    let us = c.micros();
    let updates_per_us = mesh.num_points() as f64 / us;
    C90FemResult {
        updates_per_us,
        useful_mflops: updates_per_us * PAPER_FLOPS_PER_POINT_UPDATE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c90_rate_near_057_updates_per_us() {
        let r = run_c90(&Mesh::small());
        assert!(
            (0.45..=0.70).contains(&r.updates_per_us),
            "C90 = {} pu/us (paper: 0.57)",
            r.updates_per_us
        );
        assert!(
            (200.0..=310.0).contains(&r.useful_mflops),
            "C90 = {} useful Mflop/s (paper: 250)",
            r.useful_mflops
        );
    }

    #[test]
    fn rate_is_size_independent_to_first_order() {
        let s = run_c90(&Mesh::small());
        let l = run_c90(&Mesh::large());
        let ratio = l.updates_per_us / s.updates_per_us;
        assert!((0.9..=1.1).contains(&ratio), "ratio = {ratio}");
    }
}
