//! # fem — 2-D unstructured finite-element gas dynamics (paper §5.2)
//!
//! A first-order (lumped mass matrix) cell-vertex FEM Euler solver on
//! Morton-ordered triangular meshes, reproducing Figure 7: point
//! update rates on the paper's exact meshes (46 545 points / 92 160
//! elements and 263 169 / 524 288), in two codings of the same
//! numerics (`small1` = scatter-add, `small2` = gather), against the
//! C90 reference of 0.57 point-updates/µs.
//!
//! * [`mesh`] — mesh generation and Morton reordering;
//! * [`host`] — the unpriced reference scheme;
//! * [`shared`] — both shared-memory codings on the simulated machine;
//! * [`c90`] — the vector baseline.

#![warn(missing_docs)]

pub mod c90;
pub mod host;
pub mod mesh;
pub mod shared;

pub use mesh::{structured, Mesh};
pub use shared::{Coding, RunReport, SharedFem};
