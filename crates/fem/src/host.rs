//! Host-side reference FEM gas dynamics: a first-order (lumped mass
//! matrix, forward Euler) cell-vertex scheme for the 2-D compressible
//! Euler equations on linear triangles, stabilized with element
//! Lax-Friedrichs dissipation — the class of scheme §5.2.1 describes
//! ("a simple first-order in space ... and time, unstructured, 2D,
//! FEM, gas dynamics code").
//!
//! The three classes of global communication the paper identifies all
//! appear: the global max for the permissible timestep, the gather of
//! point data to element vertices, and the scatter-add of element
//! contributions back to points.

use crate::mesh::{shape_gradients, Mesh};

/// Adiabatic index.
pub const GAMMA: f64 = 1.4;

/// Conservative state at mesh points: `[rho, mu, mv, E]`.
#[derive(Debug, Clone)]
pub struct State {
    /// Density.
    pub rho: Vec<f64>,
    /// x momentum.
    pub mu: Vec<f64>,
    /// y momentum.
    pub mv: Vec<f64>,
    /// Total energy.
    pub e: Vec<f64>,
}

impl State {
    /// An ambient gas (rho = 1, p = 1, at rest) with a Gaussian
    /// pressure pulse in the domain centre.
    pub fn pulse(mesh: &Mesh) -> Self {
        let n = mesh.num_points();
        let (cx, cy) = (mesh.width / 2.0, mesh.height / 2.0);
        let r0 = mesh.width.min(mesh.height) / 8.0;
        let mut s = State {
            rho: vec![1.0; n],
            mu: vec![0.0; n],
            mv: vec![0.0; n],
            e: vec![0.0; n],
        };
        for i in 0..n {
            let dx = mesh.px[i] - cx;
            let dy = mesh.py[i] - cy;
            let p = 1.0 + 4.0 * (-(dx * dx + dy * dy) / (r0 * r0)).exp();
            s.e[i] = p / (GAMMA - 1.0);
        }
        s
    }

    /// Pressure at point `i`.
    pub fn pressure(&self, i: usize) -> f64 {
        let rho = self.rho[i].max(1e-12);
        (GAMMA - 1.0)
            * (self.e[i] - 0.5 * (self.mu[i] * self.mu[i] + self.mv[i] * self.mv[i]) / rho)
    }

    /// Signal speed `|v| + c` at point `i`.
    pub fn signal_speed(&self, i: usize) -> f64 {
        let rho = self.rho[i].max(1e-12);
        let v = (self.mu[i] * self.mu[i] + self.mv[i] * self.mv[i]).sqrt() / rho;
        let p = self.pressure(i).max(1e-12);
        v + (GAMMA * p / rho).sqrt()
    }

    /// Total mass `sum(m_i rho_i)`.
    pub fn total_mass(&self, mesh: &Mesh) -> f64 {
        (0..self.rho.len())
            .map(|i| mesh.lumped_mass[i] * self.rho[i])
            .sum()
    }

    /// Total energy.
    pub fn total_energy(&self, mesh: &Mesh) -> f64 {
        (0..self.e.len())
            .map(|i| mesh.lumped_mass[i] * self.e[i])
            .sum()
    }
}

/// Physical fluxes `(F, G)` of the 2-D Euler equations for a state
/// 4-vector.
#[inline]
pub fn fluxes(u: [f64; 4]) -> ([f64; 4], [f64; 4]) {
    let rho = u[0].max(1e-12);
    let (vx, vy) = (u[1] / rho, u[2] / rho);
    let p = ((GAMMA - 1.0) * (u[3] - 0.5 * rho * (vx * vx + vy * vy))).max(1e-12);
    (
        [u[1], u[1] * vx + p, u[2] * vx, (u[3] + p) * vx],
        [u[2], u[1] * vy, u[2] * vy + p, (u[3] + p) * vy],
    )
}

/// CFL-safe timestep from the global max signal speed (unit edges).
pub fn timestep(s: &State, cfl: f64) -> f64 {
    let max = (0..s.rho.len())
        .map(|i| s.signal_speed(i))
        .fold(0.0, f64::max);
    cfl / max.max(1e-12)
}

/// One forward-Euler step (scatter-add coding): element loop gathers
/// vertex states, computes the element flux and dissipation, and
/// scatter-adds residuals; the point loop applies the lumped-mass
/// update. Returns the dissipation coefficient used.
pub fn step(mesh: &Mesh, s: &mut State, dt: f64) -> f64 {
    let n = mesh.num_points();
    let mut r = vec![[0.0f64; 4]; n];
    let alpha = dissipation_coefficient(s, dt);
    for e in 0..mesh.num_elements() {
        let contrib = element_residual(mesh, s, e, alpha);
        for (v, c) in mesh.tri[e].iter().zip(contrib) {
            for k in 0..4 {
                r[*v as usize][k] += c[k];
            }
        }
    }
    apply_update(mesh, s, &r, dt);
    alpha
}

/// Per-element residual contributions to its three vertices.
pub fn element_residual(mesh: &Mesh, s: &State, e: usize, alpha: f64) -> [[f64; 4]; 3] {
    let t = mesh.tri[e];
    // Gather vertex states.
    let u: [[f64; 4]; 3] = std::array::from_fn(|i| {
        let v = t[i] as usize;
        [s.rho[v], s.mu[v], s.mv[v], s.e[v]]
    });
    // Element-average state and its fluxes.
    let ue: [f64; 4] = std::array::from_fn(|k| (u[0][k] + u[1][k] + u[2][k]) / 3.0);
    let (f, g) = fluxes(ue);
    let grads = shape_gradients(mesh, e);
    let a2 = mesh.area2[e];
    // Residual: -integral(grad N_i . (F, G)) plus Lax-Friedrichs
    // dissipation toward the element mean.
    std::array::from_fn(|i| {
        std::array::from_fn(|k| {
            // Weak form: m_i dU_i/dt = +integral(grad N_i . (F, G))
            // minus the boundary term (applied point-wise in the
            // update), plus Lax-Friedrichs dissipation.
            let flux_part = 0.5 * (grads[i][0] * f[k] + grads[i][1] * g[k]);
            let diss = alpha * (a2 / 6.0) * (ue[k] - u[i][k]);
            flux_part + diss
        })
    })
}

/// Dissipation coefficient: proportional to the global max signal
/// speed over the characteristic edge length (1).
pub fn dissipation_coefficient(s: &State, _dt: f64) -> f64 {
    let max = (0..s.rho.len())
        .map(|i| s.signal_speed(i))
        .fold(0.0, f64::max);
    0.7 * max
}

/// Lumped-mass forward-Euler update from accumulated residuals,
/// including the wall-pressure boundary integral (solid walls: zero
/// mass/energy flux, pressure acts through the lumped boundary
/// normal).
pub fn apply_update(mesh: &Mesh, s: &mut State, r: &[[f64; 4]], dt: f64) {
    for (i, ri) in r.iter().enumerate().take(mesh.num_points()) {
        let f = dt / mesh.lumped_mass[i];
        let p = s.pressure(i).max(1e-12);
        let bn = mesh.bnormal[i];
        s.rho[i] += f * ri[0];
        s.mu[i] += f * (ri[1] - p * bn[0]);
        s.mv[i] += f * (ri[2] - p * bn[1]);
        s.e[i] += f * ri[3];
    }
}

/// FLOP accounting constants shared by all implementations.
pub mod flops {
    /// Per element residual (gather arithmetic, fluxes, 3 vertex
    /// contributions).
    pub const ELEMENT: u64 = 150;
    /// Divide/sqrt per element (pressure + dissipation terms).
    pub const ELEMENT_DIVSQRT: u64 = 4;
    /// Per point update.
    pub const POINT: u64 = 12;
    /// Per point signal-speed evaluation (timestep reduction).
    pub const SPEED: u64 = 12;
    /// Divide/sqrt per signal-speed evaluation.
    pub const SPEED_DIVSQRT: u64 = 3;
    /// The paper's hpm-measured conversion factor: "437 floating point
    /// operations/point update", used exactly as the paper does to
    /// convert point-update rates to "useful Mflop/s".
    pub const PAPER_FLOPS_PER_POINT_UPDATE: f64 = 437.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_gas_is_steady() {
        let mesh = Mesh::tiny();
        let n = mesh.num_points();
        let mut s = State {
            rho: vec![1.0; n],
            mu: vec![0.0; n],
            mv: vec![0.0; n],
            e: vec![2.5; n],
        };
        let dt = timestep(&s, 0.3);
        step(&mesh, &mut s, dt);
        for i in 0..n {
            assert!((s.rho[i] - 1.0).abs() < 1e-12);
            assert!(s.mu[i].abs() < 1e-12);
            assert!((s.e[i] - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn conservation_of_mass_and_energy() {
        let mesh = Mesh::tiny();
        let mut s = State::pulse(&mesh);
        let m0 = s.total_mass(&mesh);
        let e0 = s.total_energy(&mesh);
        for _ in 0..5 {
            let dt = timestep(&s, 0.3);
            step(&mesh, &mut s, dt);
        }
        assert!((s.total_mass(&mesh) - m0).abs() / m0 < 1e-12);
        assert!((s.total_energy(&mesh) - e0).abs() / e0 < 1e-12);
    }

    #[test]
    fn pulse_drives_outflow() {
        let mesh = Mesh::tiny();
        let mut s = State::pulse(&mesh);
        for _ in 0..4 {
            let dt = timestep(&s, 0.3);
            step(&mesh, &mut s, dt);
        }
        // Gas accelerates away from the centre: a point just right of
        // centre gains +x momentum.
        let probe = (0..mesh.num_points())
            .find(|i| {
                (mesh.px[*i] - (mesh.width / 2.0 + 2.0)).abs() < 0.6
                    && (mesh.py[*i] - mesh.height / 2.0).abs() < 0.6
            })
            .unwrap();
        assert!(s.mu[probe] > 0.0, "mu = {}", s.mu[probe]);
    }

    #[test]
    fn pressure_positive_through_blast() {
        let mesh = Mesh::tiny();
        let mut s = State::pulse(&mesh);
        for _ in 0..10 {
            let dt = timestep(&s, 0.3);
            step(&mesh, &mut s, dt);
            for i in 0..mesh.num_points() {
                assert!(s.rho[i] > 0.0);
                assert!(s.pressure(i) > 0.0, "negative pressure at {i}");
            }
        }
    }

    #[test]
    fn timestep_shrinks_with_stronger_pulse() {
        let mesh = Mesh::tiny();
        let weak = State::pulse(&mesh);
        let mut strong = State::pulse(&mesh);
        for e in &mut strong.e {
            *e *= 4.0;
        }
        assert!(timestep(&strong, 0.3) < timestep(&weak, 0.3));
    }

    #[test]
    fn symmetric_pulse_keeps_center_still() {
        let mesh = crate::mesh::structured(16, 16);
        let mut s = State::pulse(&mesh);
        for _ in 0..5 {
            let dt = timestep(&s, 0.3);
            step(&mesh, &mut s, dt);
        }
        // The triangulation's diagonal orientation breaks exact
        // symmetry; the centre stays still only to leading order.
        let center = (0..mesh.num_points())
            .find(|i| mesh.px[*i] == 8.0 && mesh.py[*i] == 8.0)
            .unwrap();
        let max_mu = s.mu.iter().fold(0.0f64, |a, v| a.max(v.abs()));
        assert!(
            s.mu[center].abs() < 0.05 * max_mu,
            "center mu = {} (max {})",
            s.mu[center],
            max_mu
        );
    }
}
