//! Tile-decomposed PPM on the simulated SPP-1000 (paper §5.4,
//! Table 2).
//!
//! The grid is divided into rectangular tiles, each surrounded by a
//! four-deep frame of ghost zones; "the only communication required
//! ... is that four rows of values must be exchanged between adjacent
//! tiles once per time step". After the single exchange, each tile
//! x-sweeps its interior plus a three-deep row margin (redundant
//! transport-flux work on ghost rows), which supplies the y-sweep
//! stencil without a second exchange — exactly the scheme the paper
//! describes. Tiles are assigned to processors round-robin and placed
//! block-shared so each tile is homed on its owner's hypernode.

use crate::euler::Cons;
use crate::host::NG;
use crate::ppm1d::{sweep_strip, SweepCost};
use crate::problem::PpmProblem;
use spp_core::{Cycles, MemClass, MemPort, SimArray};
use spp_runtime::{Runtime, Team, ThreadCtx};

/// Extra cycles per divide/sqrt beyond its counted flop (PA-7100
/// FDIV/FSQRT latency).
pub const DIVSQRT_EXTRA_CYCLES: u64 = 13;

/// Cumulative result of a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunReport {
    /// Elapsed simulated cycles.
    pub elapsed: Cycles,
    /// Useful FLOPs (interior zone updates; redundant margin work is
    /// charged as time but not credited as useful flops).
    pub flops: u64,
    /// Steps executed.
    pub steps: usize,
}

impl RunReport {
    /// Sustained Mflop/s.
    pub fn mflops(&self) -> f64 {
        if self.elapsed == 0 {
            0.0
        } else {
            self.flops as f64 / (self.elapsed as f64 * 1e-8) / 1e6
        }
    }

    /// Elapsed simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.elapsed as f64 * 1e-8
    }
}

/// PPM state: all tiles packed into four shared arrays (one per
/// conserved variable), tile-major with page-aligned tile strides so
/// block-shared placement homes each tile at its owner.
pub struct SharedPpm {
    /// Problem parameters.
    pub problem: PpmProblem,
    rho: SimArray<f64>,
    mu: SimArray<f64>,
    mv: SimArray<f64>,
    e: SimArray<f64>,
    /// Per-tile max signal speed from the last step.
    speeds: SimArray<f64>,
    /// Elements per tile slot (page-aligned).
    stride: usize,
    /// Ghosted tile width/height.
    gw: usize,
    gh: usize,
    /// Current dt/dx.
    dtdx: f64,
    /// Tile -> owning thread for the current team.
    owner: Vec<usize>,
}

impl SharedPpm {
    /// Initialize the blast problem on tiles placed for `team`.
    pub fn new<P: MemPort>(rt: &mut Runtime<P>, problem: PpmProblem, team: &Team) -> Self {
        let (w, h) = problem.tile_shape();
        let (gw, gh) = (w + 2 * NG, h + 2 * NG);
        // Page-aligned tile stride so BlockShared maps one tile per
        // block.
        let stride = (gw * gh).div_ceil(512) * 512;
        let tiles = problem.num_tiles();
        let total = stride * tiles;
        let class = if team.nodes_used() <= 1 {
            team.shared_class(rt.machine.config(), (total * 8) as u64)
        } else {
            MemClass::BlockShared {
                block_bytes: stride * 8,
            }
        };
        let m = &mut rt.machine;
        let mut s = SharedPpm {
            rho: SimArray::from_elem(m, class, total, 0.0),
            mu: SimArray::from_elem(m, class, total, 0.0),
            mv: SimArray::from_elem(m, class, total, 0.0),
            e: SimArray::from_elem(m, class, total, 0.0),
            speeds: SimArray::from_elem(
                m,
                MemClass::NearShared {
                    node: spp_core::NodeId(0),
                },
                tiles,
                0.0,
            ),
            stride,
            gw,
            gh,
            dtdx: 0.0,
            owner: assign_owners(tiles, team, m.config()),
            problem,
        };
        s.rho.set_label(m, "rho");
        s.mu.set_label(m, "mu");
        s.mv.set_label(m, "mv");
        s.e.set_label(m, "e");
        s.speeds.set_label(m, "speeds");
        // Host-side initialization of tile interiors.
        let p = s.problem.clone();
        let mut max_speed = 0.0f64;
        for t in 0..tiles {
            let (tx, ty) = (t % p.tiles_x, t / p.tiles_x);
            for j in 0..h {
                for i in 0..w {
                    let prim = p.initial(tx * w + i, ty * h + j);
                    let c = prim.to_cons();
                    let idx = s.tile_idx(t, i + NG, j + NG);
                    s.rho.host_mut()[idx] = c.rho;
                    s.mu.host_mut()[idx] = c.mu;
                    s.mv.host_mut()[idx] = c.mv;
                    s.e.host_mut()[idx] = c.e;
                    max_speed = max_speed.max(prim.u.abs().max(prim.v.abs()) + prim.sound_speed());
                }
            }
        }
        s.dtdx = p.cfl / max_speed;
        s
    }

    #[inline]
    fn tile_idx(&self, tile: usize, gx: usize, gy: usize) -> usize {
        tile * self.stride + gx + self.gw * gy
    }

    /// Tile id of the (wrapped) neighbour at offset `(dx, dy)`.
    fn neighbor(&self, tile: usize, dx: isize, dy: isize) -> usize {
        let p = &self.problem;
        let tx = (tile % p.tiles_x) as isize;
        let ty = (tile / p.tiles_x) as isize;
        let nx = (tx + dx).rem_euclid(p.tiles_x as isize) as usize;
        let ny = (ty + dy).rem_euclid(p.tiles_y as isize) as usize;
        ny * p.tiles_x + nx
    }

    /// One directionally split timestep. Returns (elapsed, flops).
    pub fn step<P: MemPort>(&mut self, rt: &mut Runtime<P>, team: &Team) -> (Cycles, u64) {
        self.step_profiled(rt, team, None)
    }

    /// One timestep, optionally recording each phase in a CXpa-style
    /// [`spp_runtime::Profile`].
    pub fn step_profiled<P: MemPort>(
        &mut self,
        rt: &mut Runtime<P>,
        team: &Team,
        mut prof: Option<&mut spp_runtime::Profile>,
    ) -> (Cycles, u64) {
        let track = |prof: &mut Option<&mut spp_runtime::Profile>,
                     name: &str,
                     rep: &spp_runtime::RegionReport| {
            if let Some(p) = prof.as_deref_mut() {
                p.record(name, rep);
            }
        };
        let mut elapsed = 0u64;
        let mut flops = 0u64;
        let tiles = self.problem.num_tiles();
        let (w, h) = self.problem.tile_shape();
        let (gw, gh) = (self.gw, self.gh);
        let dtdx = self.dtdx;

        // Phase 1: ghost exchange — each owner pulls 4-deep frames
        // (and corners) from its neighbours' interiors.
        {
            let owner = self.owner.clone();
            // Pre-compute source indices on the host (pure index math).
            let mut moves: Vec<(usize, usize)> = Vec::new(); // (dst, src)
            for t in 0..tiles {
                for gy in 0..gh {
                    for gx in 0..gw {
                        let in_x = (NG..NG + w).contains(&gx);
                        let in_y = (NG..NG + h).contains(&gy);
                        if in_x && in_y {
                            continue;
                        }
                        let dx = if gx < NG {
                            -1
                        } else if gx >= NG + w {
                            1
                        } else {
                            0
                        };
                        let dy = if gy < NG {
                            -1
                        } else if gy >= NG + h {
                            1
                        } else {
                            0
                        };
                        let nb = self.neighbor(t, dx, dy);
                        let sx = (gx as isize - dx * w as isize) as usize;
                        let sy = (gy as isize - dy * h as isize) as usize;
                        moves.push((self.tile_idx(t, gx, gy), self.tile_idx(nb, sx, sy)));
                    }
                }
            }
            let per_tile = moves.len() / tiles;
            let (rho, mu, mv, e) = (&mut self.rho, &mut self.mu, &mut self.mv, &mut self.e);
            let rep = rt.team_fork_join(team, |ctx| {
                for t in 0..tiles {
                    if owner[t] != ctx.tid {
                        continue;
                    }
                    for (dst, src) in &moves[t * per_tile..(t + 1) * per_tile] {
                        for arr in [&mut *rho, &mut *mu, &mut *mv, &mut *e] {
                            let v = ctx.read(arr, *src);
                            ctx.write(arr, *dst, v);
                        }
                    }
                }
            });
            track(&mut prof, "ghost", &rep);
            elapsed += rep.elapsed;
            flops += rep.flops;
        }

        // Phase 2: x sweeps over rows 1..gh-1, updating a 3-deep row
        // margin redundantly so the y sweep needs no second exchange.
        let rep = self.sweep_phase(rt, team, true, dtdx);
        track(&mut prof, "xsweep", &rep);
        elapsed += rep.elapsed;
        flops += rep.flops;

        // Phase 3: y sweeps over interior columns.
        let rep = self.sweep_phase(rt, team, false, dtdx);
        track(&mut prof, "ysweep", &rep);
        elapsed += rep.elapsed;
        flops += rep.flops;

        // Phase 4: global CFL reduction (thread 0 reads per-tile
        // speeds).
        {
            let speeds = &self.speeds;
            let mut global = 0.0f64;
            let g = &mut global;
            let rep = rt.team_fork_join(team, |ctx| {
                if ctx.tid == 0 {
                    for t in 0..tiles {
                        let v = ctx.read(speeds, t);
                        *g = g.max(v);
                        ctx.flops(1);
                    }
                }
            });
            track(&mut prof, "reduce", &rep);
            elapsed += rep.elapsed;
            flops += rep.flops;
            self.dtdx = self.problem.cfl / global.max(1e-12);
        }

        (elapsed, flops)
    }

    /// One sweep direction across all owned tiles.
    fn sweep_phase<P: MemPort>(
        &mut self,
        rt: &mut Runtime<P>,
        team: &Team,
        xdir: bool,
        dtdx: f64,
    ) -> spp_runtime::RegionReport {
        let tiles = self.problem.num_tiles();
        let (w, h) = self.problem.tile_shape();
        let (gw, gh) = (self.gw, self.gh);
        let stride = self.stride;
        let owner = self.owner.clone();
        let (rho, mu, mv, e) = (&mut self.rho, &mut self.mu, &mut self.mv, &mut self.e);
        let speeds = &mut self.speeds;
        let rep = rt.team_fork_join(team, |ctx| {
            let mut strip: Vec<Cons> = Vec::new();
            let (mut rbuf, mut mubuf, mut mvbuf, mut ebuf) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            for (t, &own) in owner.iter().enumerate().take(tiles) {
                if own != ctx.tid {
                    continue;
                }
                let mut tile_speed = 0.0f64;
                if xdir {
                    // Rows 1..gh-1; update zones NG..NG+w plus nothing
                    // extra in x (the margin is in *rows*).
                    for r in 1..gh - 1 {
                        strip.clear();
                        let base = t * stride + gw * r;
                        rbuf.clear();
                        mubuf.clear();
                        mvbuf.clear();
                        ebuf.clear();
                        ctx.read_run(rho, base..base + gw, &mut rbuf);
                        ctx.read_run(mu, base..base + gw, &mut mubuf);
                        ctx.read_run(mv, base..base + gw, &mut mvbuf);
                        ctx.read_run(e, base..base + gw, &mut ebuf);
                        for i in 0..gw {
                            strip.push(Cons {
                                rho: rbuf[i],
                                mu: mubuf[i],
                                mv: mvbuf[i],
                                e: ebuf[i],
                            });
                        }
                        let (ms, cost) = sweep_strip(&mut strip, NG..NG + w, dtdx);
                        tile_speed = tile_speed.max(ms);
                        // Interior rows produce useful flops; margin
                        // rows are redundant (time only).
                        let useful = (NG..NG + h).contains(&r);
                        charge(ctx, &cost, useful);
                        rbuf.clear();
                        mubuf.clear();
                        mvbuf.clear();
                        ebuf.clear();
                        for s in strip.iter().take(NG + w).skip(NG) {
                            rbuf.push(s.rho);
                            mubuf.push(s.mu);
                            mvbuf.push(s.mv);
                            ebuf.push(s.e);
                        }
                        ctx.write_run(rho, base + NG, &rbuf);
                        ctx.write_run(mu, base + NG, &mubuf);
                        ctx.write_run(mv, base + NG, &mvbuf);
                        ctx.write_run(e, base + NG, &ebuf);
                    }
                } else {
                    // Interior columns; swap u/v roles for the y sweep.
                    for cx in NG..NG + w {
                        strip.clear();
                        for r in 0..gh {
                            let idx = t * stride + cx + gw * r;
                            strip.push(Cons {
                                rho: ctx.read(rho, idx),
                                mu: ctx.read(mv, idx),
                                mv: ctx.read(mu, idx),
                                e: ctx.read(e, idx),
                            });
                        }
                        let (ms, cost) = sweep_strip(&mut strip, NG..NG + h, dtdx);
                        tile_speed = tile_speed.max(ms);
                        charge(ctx, &cost, true);
                        for (r, s) in strip.iter().enumerate().take(NG + h).skip(NG) {
                            let idx = t * stride + cx + gw * r;
                            ctx.write(rho, idx, s.rho);
                            ctx.write(mu, idx, s.mv);
                            ctx.write(mv, idx, s.mu);
                            ctx.write(e, idx, s.e);
                        }
                    }
                }
                if xdir {
                    // Record after the x phase; the y phase maxes in.
                    ctx.write(speeds, t, tile_speed);
                } else {
                    let prev = ctx.read(speeds, t);
                    ctx.write(speeds, t, prev.max(tile_speed));
                }
            }
        });
        rep
    }

    /// Run `steps` timesteps.
    pub fn run<P: MemPort>(&mut self, rt: &mut Runtime<P>, team: &Team, steps: usize) -> RunReport {
        let mut out = RunReport {
            steps,
            ..Default::default()
        };
        for _ in 0..steps {
            let (c, f) = self.step(rt, team);
            out.elapsed += c;
            out.flops += f;
        }
        out
    }

    /// Host view: primitive state of global zone `(x, y)` (validation).
    pub fn prim(&self, x: usize, y: usize) -> crate::euler::Prim {
        let (w, h) = self.problem.tile_shape();
        let t = (x / w) + self.problem.tiles_x * (y / h);
        let idx = self.tile_idx(t, x % w + NG, y % h + NG);
        Cons {
            rho: self.rho.host()[idx],
            mu: self.mu.host()[idx],
            mv: self.mv.host()[idx],
            e: self.e.host()[idx],
        }
        .to_prim()
    }

    /// Total mass over tile interiors (validation).
    pub fn total_mass(&self) -> f64 {
        let (w, h) = self.problem.tile_shape();
        let mut total = 0.0;
        for t in 0..self.problem.num_tiles() {
            for j in NG..NG + h {
                for i in NG..NG + w {
                    total += self.rho.host()[self.tile_idx(t, i, j)];
                }
            }
        }
        total
    }
}

/// Credit a sweep's cost to the thread: flops (useful or redundant)
/// plus the multi-cycle divide/sqrt and work-array traffic.
fn charge<P: MemPort>(ctx: &mut ThreadCtx<'_, P>, cost: &SweepCost, useful: bool) {
    if useful {
        ctx.flops(cost.flops);
    } else {
        // Redundant margin work: same time, no useful-flop credit.
        ctx.cycles(ctx.cost_model().flop_cycles(cost.flops));
    }
    ctx.cycles(cost.divsqrt * DIVSQRT_EXTRA_CYCLES + cost.work_accesses);
}

/// Deal tiles to threads so a tile's block-shared home node matches
/// its owner's node: tile `t` goes to node group `t % groups`, round
/// robin within the group.
fn assign_owners(tiles: usize, team: &Team, cfg: &spp_core::MachineConfig) -> Vec<usize> {
    // Group thread ids by node.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut node_of_group: Vec<u8> = Vec::new();
    for (tid, cpu) in team.cpus().iter().enumerate() {
        let node = cfg.node_of_cpu(*cpu).0;
        match node_of_group.iter().position(|n| *n == node) {
            Some(g) => groups[g].push(tid),
            None => {
                node_of_group.push(node);
                groups.push(vec![tid]);
            }
        }
    }
    let ng = groups.len();
    (0..tiles)
        .map(|t| {
            let g = t % ng;
            groups[g][(t / ng) % groups[g].len()]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::Grid;
    use spp_runtime::Placement;

    fn sim(threads: usize, p: PpmProblem) -> (Runtime, SharedPpm, Team) {
        let mut rt = Runtime::spp1000(2);
        let team = Team::place(rt.machine.config(), threads, &Placement::HighLocality);
        let s = SharedPpm::new(&mut rt, p, &team);
        (rt, s, team)
    }

    #[test]
    fn profiled_step_records_every_phase() {
        let p = PpmProblem::tiny();
        let (mut rt, mut s, team) = sim(4, p);
        let mut prof = spp_runtime::Profile::new();
        let (elapsed, _) = s.step_profiled(&mut rt, &team, Some(&mut prof));
        let names: Vec<&str> = prof.regions().iter().map(|r| r.name.as_str()).collect();
        for want in ["ghost", "xsweep", "ysweep", "reduce"] {
            assert!(names.contains(&want), "missing {want} in {names:?}");
        }
        assert_eq!(prof.total_elapsed(), elapsed, "profile covers the step");
    }

    #[test]
    fn matches_host_reference() {
        let p = PpmProblem::tiny();
        let (mut rt, mut s, team) = sim(1, p.clone());
        let mut g = Grid::new(&p);
        for _ in 0..3 {
            s.step(&mut rt, &team);
            g.step(p.cfl);
        }
        for y in (0..p.ny).step_by(5) {
            for x in (0..p.nx).step_by(3) {
                let a = s.prim(x, y);
                let b = g.prim(x, y);
                assert!(
                    (a.rho - b.rho).abs() < 1e-9,
                    "rho({x},{y}) = {} vs {}",
                    a.rho,
                    b.rho
                );
                assert!((a.p - b.p).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_physics() {
        let p = PpmProblem::tiny();
        let (mut rt1, mut s1, team1) = sim(1, p.clone());
        let (mut rt8, mut s8, team8) = sim(8, p.clone());
        for _ in 0..2 {
            s1.step(&mut rt1, &team1);
            s8.step(&mut rt8, &team8);
        }
        for y in (0..p.ny).step_by(7) {
            for x in 0..p.nx {
                let a = s1.prim(x, y);
                let b = s8.prim(x, y);
                assert!((a.rho - b.rho).abs() < 1e-12, "({x},{y})");
            }
        }
    }

    #[test]
    fn mass_conserved_across_tiles() {
        let p = PpmProblem::tiny();
        let (mut rt, mut s, team) = sim(4, p);
        let m0 = s.total_mass();
        for _ in 0..4 {
            s.step(&mut rt, &team);
        }
        let m1 = s.total_mass();
        assert!((m1 - m0).abs() / m0 < 1e-11, "{m0} -> {m1}");
    }

    #[test]
    fn near_linear_speedup_to_8() {
        let p = PpmProblem::table2(64, 128, 4, 8);
        let (mut rt1, mut s1, team1) = sim(1, p.clone());
        let r1 = s1.run(&mut rt1, &team1, 1);
        let (mut rt8, mut s8, team8) = sim(8, p);
        let r8 = s8.run(&mut rt8, &team8, 1);
        let speedup = r1.elapsed as f64 / r8.elapsed as f64;
        assert!(speedup > 6.0, "8-proc speedup = {speedup}");
        assert_eq!(r1.flops, r8.flops);
    }

    #[test]
    fn finer_tiles_cost_more_per_zone() {
        // Table 2: 12x48 tiling is ~20% slower than 4x16 on the same
        // grid (more redundant margin work + ghost traffic).
        let (mut rt_a, mut a, team_a) = sim(4, PpmProblem::table2(120, 480, 4, 16));
        let ra = a.run(&mut rt_a, &team_a, 1);
        let (mut rt_b, mut b, team_b) = sim(4, PpmProblem::table2(120, 480, 12, 48));
        let rb = b.run(&mut rt_b, &team_b, 1);
        let ratio = rb.elapsed as f64 / ra.elapsed as f64;
        assert!(
            (1.1..=1.6).contains(&ratio),
            "fine/coarse time ratio = {ratio}"
        );
    }
}
