//! Gamma-law Euler equations: state conversions and the two-shock
//! approximate Riemann solver of the PPM scheme (Colella & Woodward
//! 1984, §3 of their paper; PROMETHEUS uses the same solver).

/// Ratio of specific heats (PROMETHEUS runs mostly used 1.4 or 5/3;
/// we fix the classic 1.4).
pub const GAMMA: f64 = 1.4;

/// Floor applied to density and pressure to keep states physical.
pub const SMALL: f64 = 1e-10;

/// Primitive state (density, normal velocity, transverse velocity,
/// pressure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prim {
    /// Density.
    pub rho: f64,
    /// Normal velocity.
    pub u: f64,
    /// Transverse velocity.
    pub v: f64,
    /// Pressure.
    pub p: f64,
}

/// Conserved state (density, normal momentum, transverse momentum,
/// total energy density).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cons {
    /// Mass density.
    pub rho: f64,
    /// Normal momentum.
    pub mu: f64,
    /// Transverse momentum.
    pub mv: f64,
    /// Total energy per volume.
    pub e: f64,
}

impl Prim {
    /// Adiabatic sound speed.
    pub fn sound_speed(&self) -> f64 {
        (GAMMA * self.p / self.rho).sqrt()
    }

    /// Convert to conserved variables.
    pub fn to_cons(&self) -> Cons {
        Cons {
            rho: self.rho,
            mu: self.rho * self.u,
            mv: self.rho * self.v,
            e: self.p / (GAMMA - 1.0) + 0.5 * self.rho * (self.u * self.u + self.v * self.v),
        }
    }
}

impl Cons {
    /// Convert to primitive variables (with floors).
    pub fn to_prim(&self) -> Prim {
        let rho = self.rho.max(SMALL);
        let u = self.mu / rho;
        let v = self.mv / rho;
        let p = ((GAMMA - 1.0) * (self.e - 0.5 * rho * (u * u + v * v))).max(SMALL);
        Prim { rho, u, v, p }
    }
}

/// Interface flux of the conserved variables for a resolved state.
pub fn flux(s: &Prim) -> Cons {
    let c = s.to_cons();
    Cons {
        rho: c.mu,
        mu: c.mu * s.u + s.p,
        mv: c.mv * s.u,
        e: (c.e + s.p) * s.u,
    }
}

/// Lagrangian wave speed `W(p*)` of a shock (or, in the two-shock
/// approximation, a rarefaction treated as a shock) connecting `s` to
/// pressure `pstar`.
fn wave_speed(s: &Prim, pstar: f64) -> f64 {
    let g = GAMMA;
    (g * s.p * s.rho * (1.0 + (g + 1.0) / (2.0 * g) * (pstar / s.p - 1.0)).max(SMALL)).sqrt()
}

/// Two-shock approximate Riemann solver: returns the resolved state
/// at the interface (`x/t = 0`).
pub fn riemann(left: &Prim, right: &Prim) -> Prim {
    // Initial guess: PVRS (linearized) pressure.
    let cl = left.sound_speed() * left.rho;
    let cr = right.sound_speed() * right.rho;
    let mut pstar =
        ((cr * left.p + cl * right.p + cl * cr * (left.u - right.u)) / (cl + cr)).max(SMALL);
    // Newton-ish secant iterations on u*_L(p) = u*_R(p).
    let mut ustar = 0.0;
    for _ in 0..4 {
        let wl = wave_speed(left, pstar);
        let wr = wave_speed(right, pstar);
        let ul = left.u - (pstar - left.p) / wl;
        let ur = right.u + (pstar - right.p) / wr;
        ustar = 0.5 * (ul + ur);
        // d(u*_L)/dp ~ -1/W, d(u*_R)/dp ~ 1/W.
        let dp = (ul - ur) / (1.0 / wl + 1.0 / wr);
        pstar = (pstar + dp).max(SMALL);
    }

    // Sample the state at x/t = 0.
    let (s, sign) = if ustar >= 0.0 {
        (left, 1.0)
    } else {
        (right, -1.0)
    };
    let w = wave_speed(s, pstar);
    // Post-wave density from the Lagrangian jump relation.
    let rho_star = (1.0 / (1.0 / s.rho - (pstar - s.p) / (w * w)).max(SMALL)).max(SMALL);
    // Wave velocity (shock front) on this side.
    let wave_vel = s.u - sign * w / s.rho;
    let star = Prim {
        rho: rho_star,
        u: ustar,
        v: s.v,
        p: pstar,
    };
    if pstar >= s.p {
        // Shock: the interface sees the star state if the shock has
        // passed, else the pre-wave state.
        if sign * wave_vel <= 0.0 {
            star
        } else {
            *s
        }
    } else {
        // Rarefaction (two-shock approximation treats its head/tail
        // with the shock relations): sample head and tail speeds.
        let c_pre = s.sound_speed();
        let c_star = (GAMMA * pstar / rho_star).sqrt();
        let head = s.u - sign * c_pre;
        let tail = ustar - sign * c_star;
        if sign * head >= 0.0 {
            *s
        } else if sign * tail <= 0.0 {
            star
        } else {
            // Inside the fan: linear interpolation between pre and
            // star states (adequate within the two-shock approximation).
            let frac = (sign * head) / (sign * (head - tail)).max(SMALL);
            let frac = frac.clamp(0.0, 1.0);
            Prim {
                rho: s.rho + frac * (rho_star - s.rho),
                u: s.u + frac * (ustar - s.u),
                v: s.v,
                p: s.p + frac * (pstar - s.p),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prim(rho: f64, u: f64, p: f64) -> Prim {
        Prim { rho, u, v: 0.0, p }
    }

    #[test]
    fn conversions_round_trip() {
        let s = Prim {
            rho: 1.3,
            u: -0.4,
            v: 0.9,
            p: 2.1,
        };
        let back = s.to_cons().to_prim();
        assert!((back.rho - s.rho).abs() < 1e-12);
        assert!((back.u - s.u).abs() < 1e-12);
        assert!((back.v - s.v).abs() < 1e-12);
        assert!((back.p - s.p).abs() < 1e-12);
    }

    #[test]
    fn trivial_riemann_returns_the_state() {
        let s = prim(1.0, 0.5, 1.0);
        let r = riemann(&s, &s);
        assert!((r.rho - 1.0).abs() < 1e-9);
        assert!((r.u - 0.5).abs() < 1e-9);
        assert!((r.p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sod_star_values() {
        // Sod problem: exact p* = 0.30313, u* = 0.92745.
        let l = prim(1.0, 0.0, 1.0);
        let r = prim(0.125, 0.0, 0.1);
        // Extract pstar/ustar by sampling just left of the contact:
        // the resolved state at x/t = 0 for Sod is inside the star
        // region (u* > 0 -> left star state).
        let res = riemann(&l, &r);
        assert!(
            (res.p - 0.30313).abs() < 0.03,
            "p* = {} (exact 0.30313)",
            res.p
        );
        assert!(
            (res.u - 0.92745).abs() < 0.05,
            "u* = {} (exact 0.92745)",
            res.u
        );
    }

    #[test]
    fn symmetric_collision_is_stationary() {
        let l = prim(1.0, 2.0, 1.0);
        let r = prim(1.0, -2.0, 1.0);
        let res = riemann(&l, &r);
        assert!(res.u.abs() < 1e-9, "u = {}", res.u);
        assert!(res.p > 1.0, "colliding flows must compress: p = {}", res.p);
        assert!(res.rho > 1.0);
    }

    #[test]
    fn supersonic_advection_takes_upwind_state() {
        // Both states moving right supersonically: interface sees the
        // left state.
        let l = prim(1.0, 10.0, 1.0);
        let r = prim(0.5, 10.0, 1.0);
        let res = riemann(&l, &r);
        assert!((res.rho - 1.0).abs() < 0.05, "rho = {}", res.rho);
    }

    #[test]
    fn flux_of_static_state_is_pressure_only() {
        let s = prim(1.0, 0.0, 2.5);
        let f = flux(&s);
        assert_eq!(f.rho, 0.0);
        assert!((f.mu - 2.5).abs() < 1e-12);
        assert_eq!(f.e, 0.0);
    }

    #[test]
    fn riemann_is_mirror_symmetric() {
        let l = prim(1.0, 0.3, 1.2);
        let r = prim(0.6, -0.1, 0.4);
        let a = riemann(&l, &r);
        // Mirror: swap sides and negate velocities.
        let lm = prim(0.6, 0.1, 0.4);
        let rm = prim(1.0, -0.3, 1.2);
        let b = riemann(&lm, &rm);
        assert!((a.rho - b.rho).abs() < 1e-9);
        assert!((a.u + b.u).abs() < 1e-9);
        assert!((a.p - b.p).abs() < 1e-9);
    }
}
