//! Problem configurations for Table 2 and the blast-wave workload.
//!
//! PROMETHEUS at Goddard ran supernova-style problems; our stand-in is
//! a pressurized circular blast in a periodic box — it exercises the
//! same code path (strong shocks, contact discontinuities, both sweep
//! directions) on the paper's exact grid and tile configurations.

/// Static description of a PPM run.
#[derive(Debug, Clone)]
pub struct PpmProblem {
    /// Grid zones in x.
    pub nx: usize,
    /// Grid zones in y.
    pub ny: usize,
    /// Tiles across x.
    pub tiles_x: usize,
    /// Tiles across y.
    pub tiles_y: usize,
    /// CFL safety factor.
    pub cfl: f64,
    /// Blast over-pressure ratio.
    pub blast_pressure: f64,
    /// Blast radius in zones.
    pub blast_radius: f64,
}

impl PpmProblem {
    /// A Table 2 configuration: grid `nx x ny` with `tx x ty` tiles.
    pub fn table2(nx: usize, ny: usize, tx: usize, ty: usize) -> Self {
        assert_eq!(nx % tx, 0, "tiles must divide the grid");
        assert_eq!(ny % ty, 0, "tiles must divide the grid");
        PpmProblem {
            nx,
            ny,
            tiles_x: tx,
            tiles_y: ty,
            cfl: 0.4,
            blast_pressure: 10.0,
            blast_radius: (nx.min(ny) as f64) / 6.0,
        }
    }

    /// The paper's base case: 120x480 grid, 4x16 tiles.
    pub fn base() -> Self {
        Self::table2(120, 480, 4, 16)
    }

    /// The fine-tile case: 120x480 grid, 12x48 tiles.
    pub fn fine_tiles() -> Self {
        Self::table2(120, 480, 12, 48)
    }

    /// The big-grid case: 240x960, 4x16 tiles.
    pub fn big() -> Self {
        Self::table2(240, 960, 4, 16)
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self::table2(24, 48, 2, 4)
    }

    /// Total zones.
    pub fn zones(&self) -> usize {
        self.nx * self.ny
    }

    /// Zones per tile (width, height).
    pub fn tile_shape(&self) -> (usize, usize) {
        (self.nx / self.tiles_x, self.ny / self.tiles_y)
    }

    /// Total tiles.
    pub fn num_tiles(&self) -> usize {
        self.tiles_x * self.tiles_y
    }

    /// Initial primitive state at zone `(x, y)`: ambient gas with a
    /// central over-pressurized disc.
    pub fn initial(&self, x: usize, y: usize) -> crate::euler::Prim {
        let dx = x as f64 + 0.5 - self.nx as f64 / 2.0;
        let dy = y as f64 + 0.5 - self.ny as f64 / 2.0;
        let inside = dx * dx + dy * dy < self.blast_radius * self.blast_radius;
        crate::euler::Prim {
            rho: 1.0,
            u: 0.0,
            v: 0.0,
            p: if inside { self.blast_pressure } else { 1.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_configurations() {
        assert_eq!(PpmProblem::base().tile_shape(), (30, 30));
        assert_eq!(PpmProblem::base().num_tiles(), 64);
        assert_eq!(PpmProblem::fine_tiles().tile_shape(), (10, 10));
        assert_eq!(PpmProblem::fine_tiles().num_tiles(), 576);
        assert_eq!(PpmProblem::big().tile_shape(), (60, 60));
        assert_eq!(PpmProblem::big().zones(), 230_400);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn tiles_must_divide_grid() {
        PpmProblem::table2(100, 100, 7, 4);
    }

    #[test]
    fn blast_is_centered_and_hot() {
        let p = PpmProblem::tiny();
        let center = p.initial(p.nx / 2, p.ny / 2);
        assert_eq!(center.p, p.blast_pressure);
        let corner = p.initial(0, 0);
        assert_eq!(corner.p, 1.0);
        assert_eq!(corner.rho, 1.0);
    }
}
