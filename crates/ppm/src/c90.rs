//! Cray C90 baseline for PPM. Table 2 quotes no C90 figure, but §6
//! anchors the discussion: "a single hypernode sustained performance
//! approached that of a single head of a CRI C-90". PPM vectorizes
//! beautifully (long strips, dense arithmetic), so the C90 model runs
//! it at a few hundred Mflop/s — the 8-processor SPP's ~230 Mflop/s
//! (Table 2) indeed approaches it.

use crate::problem::PpmProblem;
use c90_model::{LoopSpec, C90};

/// Flops per zone per sweep (matches the literal counts of
/// [`crate::ppm1d`]).
const FLOPS_PER_ZONE_SWEEP: f64 = 240.0;

/// Modelled C90 execution of PPM.
#[derive(Debug, Clone, Copy)]
pub struct C90PpmResult {
    /// Seconds per timestep.
    pub seconds_per_step: f64,
    /// Sustained Mflop/s.
    pub mflops: f64,
}

/// Price one timestep of problem `p` on a C90 head.
pub fn run_c90(p: &PpmProblem) -> C90PpmResult {
    let zones = p.zones() as u64;
    let mut c = C90::new();
    // Two sweeps per step; the dominant loops are dense vector
    // operations over strips, with divide/sqrt handled by the C90's
    // vector reciprocal units (folded into efficiency).
    for _ in 0..2 {
        c.vloop(
            zones,
            &LoopSpec {
                flops: FLOPS_PER_ZONE_SWEEP,
                contig_refs: 40.0,
                gathers: 0.0,
                scatters: 0.0,
                efficiency: 0.4,
            },
        );
    }
    C90PpmResult {
        seconds_per_step: c.seconds(),
        mflops: c.mflops(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c90_ppm_rate_is_a_few_hundred_mflops() {
        let r = run_c90(&PpmProblem::base());
        assert!(
            (300.0..=450.0).contains(&r.mflops),
            "C90 PPM = {} Mflop/s",
            r.mflops
        );
    }

    #[test]
    fn time_scales_with_grid() {
        let a = run_c90(&PpmProblem::base());
        let b = run_c90(&PpmProblem::big());
        let ratio = b.seconds_per_step / a.seconds_per_step;
        assert!((3.8..=4.2).contains(&ratio), "ratio = {ratio}");
    }
}
