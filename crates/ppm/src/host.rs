//! Host-side reference implementation: the full periodic grid swept
//! directionally with [`crate::ppm1d::sweep_strip`], no tiling, no
//! pricing. The physics oracle for the tiled simulated version.

use crate::euler::{Cons, Prim};
use crate::ppm1d::sweep_strip;
use crate::problem::PpmProblem;

/// Ghost width used when assembling periodic strips.
pub const NG: usize = 4;

/// Full-grid state, zone-major (`idx = x + nx * y`).
#[derive(Debug, Clone)]
pub struct Grid {
    /// Conserved state per zone.
    pub cells: Vec<Cons>,
    /// Zones in x.
    pub nx: usize,
    /// Zones in y.
    pub ny: usize,
    /// Current timestep (deferred CFL from the previous step).
    pub dt: f64,
}

impl Grid {
    /// Initialize from a problem definition.
    pub fn new(p: &PpmProblem) -> Self {
        let mut cells = Vec::with_capacity(p.zones());
        for y in 0..p.ny {
            for x in 0..p.nx {
                cells.push(p.initial(x, y).to_cons());
            }
        }
        let mut g = Grid {
            cells,
            nx: p.nx,
            ny: p.ny,
            dt: 0.0,
        };
        g.dt = p.cfl / g.max_signal_speed();
        g
    }

    /// Maximum `|u| + c` over the grid (host scan).
    pub fn max_signal_speed(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| {
                let s = c.to_prim();
                s.u.abs().max(s.v.abs()) + s.sound_speed()
            })
            .fold(0.0, f64::max)
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.cells.iter().map(|c| c.rho).sum()
    }

    /// Total energy.
    pub fn total_energy(&self) -> f64 {
        self.cells.iter().map(|c| c.e).sum()
    }

    /// Primitive state of zone `(x, y)`.
    pub fn prim(&self, x: usize, y: usize) -> Prim {
        self.cells[x + self.nx * y].to_prim()
    }

    /// One directionally split timestep (x sweep then y sweep) with
    /// periodic boundaries. Returns the max signal speed observed.
    pub fn step(&mut self, cfl: f64) -> f64 {
        let dt = self.dt;
        let mut max_speed = 0.0f64;

        // X sweeps.
        let nx = self.nx;
        let mut strip = vec![Cons::default(); nx + 2 * NG];
        for y in 0..self.ny {
            for (i, s) in strip.iter_mut().enumerate() {
                let x = (i + nx - NG) % nx;
                *s = self.cells[x + nx * y];
            }
            let (ms, _) = sweep_strip(&mut strip, NG..NG + nx, dt);
            max_speed = max_speed.max(ms);
            for x in 0..nx {
                self.cells[x + nx * y] = strip[NG + x];
            }
        }

        // Y sweeps (transverse role of u/v swaps).
        let ny = self.ny;
        let mut strip = vec![Cons::default(); ny + 2 * NG];
        for x in 0..nx {
            for (i, s) in strip.iter_mut().enumerate() {
                let y = (i + ny - NG) % ny;
                *s = swap_uv(self.cells[x + nx * y]);
            }
            let (ms, _) = sweep_strip(&mut strip, NG..NG + ny, dt);
            max_speed = max_speed.max(ms);
            for y in 0..ny {
                self.cells[x + nx * y] = swap_uv(strip[NG + y]);
            }
        }

        self.dt = cfl / max_speed.max(1e-12);
        max_speed
    }
}

/// Swap the roles of normal and transverse momentum (for y sweeps).
#[inline]
pub fn swap_uv(c: Cons) -> Cons {
    Cons {
        rho: c.rho,
        mu: c.mv,
        mv: c.mu,
        e: c.e,
    }
}

/// Analytic Sod-tube reference values at `t = 0.2` on `x in [0, 1]`
/// with the diaphragm at 0.5 (Toro, Table 4.1-ish samples):
/// `(x, density)` pairs in smooth regions.
pub fn sod_reference() -> [(f64, f64); 4] {
    [
        (0.1, 1.0),      // undisturbed left state
        (0.55, 0.42632), // between contact and shock... (post-contact)
        (0.75, 0.26557), // post-shock density
        (0.95, 0.125),   // undisturbed right state
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_on_periodic_grid() {
        let p = PpmProblem::tiny();
        let mut g = Grid::new(&p);
        let m0 = g.total_mass();
        let e0 = g.total_energy();
        for _ in 0..5 {
            g.step(p.cfl);
        }
        assert!((g.total_mass() - m0).abs() / m0 < 1e-11, "mass drift");
        assert!((g.total_energy() - e0).abs() / e0 < 1e-11, "energy drift");
    }

    #[test]
    fn uniform_gas_stays_uniform() {
        let p = PpmProblem {
            blast_pressure: 1.0, // no blast
            ..PpmProblem::tiny()
        };
        let mut g = Grid::new(&p);
        for _ in 0..3 {
            g.step(p.cfl);
        }
        for c in &g.cells {
            let s = c.to_prim();
            assert!((s.rho - 1.0).abs() < 1e-12);
            assert!(s.u.abs() < 1e-12);
            assert!((s.p - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn blast_expands_symmetrically() {
        let p = PpmProblem::table2(48, 48, 2, 2);
        let mut g = Grid::new(&p);
        for _ in 0..16 {
            g.step(p.cfl);
        }
        // Pressure pattern symmetric under x <-> nx-1-x.
        for y in 0..p.ny {
            for x in 0..p.nx / 2 {
                let a = g.prim(x, y).p;
                let b = g.prim(p.nx - 1 - x, y).p;
                assert!(
                    (a - b).abs() < 1e-9 * a.max(1.0),
                    "asymmetry at ({x},{y}): {a} vs {b}"
                );
            }
        }
        // The shock has moved outward: pressure just beyond the
        // initial blast edge has risen.
        let probe = g.prim(p.nx / 2 + (p.blast_radius as usize) + 2, p.ny / 2);
        assert!(probe.p > 1.01, "shock not yet arrived: p = {}", probe.p);
    }

    #[test]
    fn positivity_is_maintained() {
        let p = PpmProblem {
            blast_pressure: 100.0, // strong shock
            ..PpmProblem::tiny()
        };
        let mut g = Grid::new(&p);
        for _ in 0..10 {
            g.step(p.cfl);
            for c in &g.cells {
                let s = c.to_prim();
                assert!(s.rho > 0.0 && s.p > 0.0, "negative state {s:?}");
            }
        }
    }

    #[test]
    fn sod_tube_profile_matches_analytics() {
        // Periodic boundaries would contaminate a plain Sod setup, so
        // use the mirrored double domain: x in [0, 2] with the high
        // state in [0.5, 1.5]. The diaphragm at 1.5 reproduces the
        // standard Sod problem (standard coordinate = x - 1.0); the
        // mirror waves from x = 0.5 stay clear of the sampled region
        // until t = 0.2.
        let nx = 512;
        let dx = 2.0 / nx as f64;
        let mut g = Grid {
            cells: Vec::new(),
            nx,
            ny: 4,
            dt: 0.0,
        };
        for _y in 0..4 {
            for zx in 0..nx {
                let xp = (zx as f64 + 0.5) * dx;
                let high = (0.5..1.5).contains(&xp);
                g.cells.push(
                    Prim {
                        rho: if high { 1.0 } else { 0.125 },
                        u: 0.0,
                        v: 0.0,
                        p: if high { 1.0 } else { 0.1 },
                    }
                    .to_cons(),
                );
            }
        }
        g.dt = 0.4 / g.max_signal_speed();
        let mut t = 0.0;
        while t < 0.2 {
            let dt_phys = (g.dt * dx).min(0.2 - t + 1e-12);
            g.dt = dt_phys / dx;
            g.step(0.4);
            t += dt_phys;
        }
        for (xref, rho_ref) in sod_reference() {
            // Map standard Sod coordinate to the double domain.
            let xp = xref + 1.0;
            let zx = ((xp / dx) as usize).min(nx - 1);
            let got = g.prim(zx, 1).rho;
            assert!(
                (got - rho_ref).abs() / rho_ref < 0.08,
                "rho({xref}) = {got}, expected {rho_ref}"
            );
        }
    }
}
