//! # ppm — Piecewise-Parabolic Method 2-D gas dynamics (paper §5.4)
//!
//! A PROMETHEUS-style compressible Euler solver: PPM reconstruction
//! (Colella & Woodward 1984), a two-shock approximate Riemann solver,
//! directional splitting, and the paper's tile domain decomposition
//! with four-deep ghost frames exchanged once per step. Reproduces
//! Table 2: Mflop/s on the 120x480 grid with 4x16 and 12x48 tilings
//! on 1-8 processors, plus 240x960 with 4x16 at 4.
//!
//! * [`euler`] — gamma-law state algebra + the Riemann solver;
//! * [`ppm1d`] — the 1-D PPM sweep;
//! * [`problem`] — Table 2 configurations and the blast workload;
//! * [`host`] — unpriced full-grid reference;
//! * [`shared`] — the tiled implementation on the simulated SPP-1000;
//! * [`c90`] — the C90 reference rate for the §6 comparison.

#![warn(missing_docs)]

pub mod c90;
pub mod euler;
pub mod host;
pub mod ppm1d;
pub mod problem;
pub mod shared;

pub use euler::{Cons, Prim, GAMMA};
pub use problem::PpmProblem;
pub use shared::{RunReport, SharedPpm};
