//! One-dimensional PPM sweep (Colella & Woodward 1984): parabolic
//! reconstruction with monotonicity constraints, characteristic-domain
//! averaged interface states, two-shock Riemann fluxes, conservative
//! update. Directional splitting applies this routine along rows and
//! columns.

use crate::euler::{flux, riemann, Cons, Prim, SMALL};

/// Stencil half-width: updating zone `j` touches zones `j-3 ..= j+3`.
pub const STENCIL: usize = 3;

/// Cost accounting of one sweep (the caller charges these to the
/// machine model).
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepCost {
    /// Floating-point operations.
    pub flops: u64,
    /// Divide/sqrt operations (multi-cycle on the PA-7100).
    pub divsqrt: u64,
    /// Work-array accesses (cache-resident strip temporaries).
    pub work_accesses: u64,
}

impl SweepCost {
    /// Merge another cost.
    pub fn add(&mut self, o: SweepCost) {
        self.flops += o.flops;
        self.divsqrt += o.divsqrt;
        self.work_accesses += o.work_accesses;
    }
}

/// Per-zone reconstruction flops (4 variables).
const RECON_FLOPS: u64 = 88;
/// Per-interface trace flops.
const TRACE_FLOPS: u64 = 40;
/// Per-interface Riemann + flux flops.
const RIEMANN_FLOPS: u64 = 70;
/// Per-interface divide/sqrt count.
const RIEMANN_DIVSQRT: u64 = 10;
/// Per-updated-zone update flops.
const UPDATE_FLOPS: u64 = 30;
/// Work-array traffic per updated zone (strip temporaries).
const WORK_PER_ZONE: u64 = 45;

/// Monotonized parabola coefficients for one variable in one zone:
/// returns `(a_left, a_right, a6)`.
#[inline]
fn parabola(am2: f64, am1: f64, a0: f64, ap1: f64, ap2: f64) -> (f64, f64, f64) {
    // Fourth-order interface values.
    let mut al = (7.0 / 12.0) * (am1 + a0) - (1.0 / 12.0) * (am2 + ap1);
    let mut ar = (7.0 / 12.0) * (a0 + ap1) - (1.0 / 12.0) * (am1 + ap2);
    // CW84 monotonicity constraints.
    if (ar - a0) * (a0 - al) <= 0.0 {
        al = a0;
        ar = a0;
    } else {
        let da = ar - al;
        let mid = a0 - 0.5 * (al + ar);
        if da * mid > da * da / 6.0 {
            al = 3.0 * a0 - 2.0 * ar;
        } else if -da * da / 6.0 > da * mid {
            ar = 3.0 * a0 - 2.0 * al;
        }
    }
    let a6 = 6.0 * (a0 - 0.5 * (al + ar));
    (al, ar, a6)
}

/// Average of the parabola over the rightmost fraction `x` of the zone
/// (domain of dependence of a right-moving wave).
#[inline]
fn avg_right(al: f64, ar: f64, a6: f64, x: f64) -> f64 {
    ar - 0.5 * x * ((ar - al) - (1.0 - 2.0 * x / 3.0) * a6)
}

/// Average over the leftmost fraction `x`.
#[inline]
fn avg_left(al: f64, ar: f64, a6: f64, x: f64) -> f64 {
    al + 0.5 * x * ((ar - al) + (1.0 - 2.0 * x / 3.0) * a6)
}

/// Sweep one strip. `strip` holds conserved states including ghosts;
/// zones in `upd` are updated in place (each needs `STENCIL` valid
/// zones on both sides). Returns the maximum signal speed seen and the
/// cost tally.
pub fn sweep_strip(strip: &mut [Cons], upd: std::ops::Range<usize>, dtdx: f64) -> (f64, SweepCost) {
    let n = strip.len();
    assert!(
        upd.start >= STENCIL && upd.end + STENCIL <= n,
        "stencil out of bounds"
    );
    if upd.is_empty() {
        return (0.0, SweepCost::default());
    }
    let mut cost = SweepCost::default();

    // Primitives over the zones the stencil touches.
    let lo = upd.start - STENCIL;
    let hi = upd.end + STENCIL;
    let prim: Vec<Prim> = strip[lo..hi].iter().map(|c| c.to_prim()).collect();
    let at = |j: usize| prim[j - lo];
    cost.flops += (hi - lo) as u64 * 12;
    cost.divsqrt += (hi - lo) as u64 * 2;

    // Parabolas for zones needing them: upd.start-1 ..= upd.end.
    let plo = upd.start - 1;
    let phi = upd.end + 1;
    // (al, ar, a6) per variable [rho, u, v, p] per zone.
    let mut coef = vec![[(0.0f64, 0.0f64, 0.0f64); 4]; phi - plo];
    for j in plo..phi {
        let g = |f: fn(&Prim) -> f64, j: usize| f(&at(j));
        let fields: [fn(&Prim) -> f64; 4] = [|s| s.rho, |s| s.u, |s| s.v, |s| s.p];
        for (v, f) in fields.iter().enumerate() {
            coef[j - plo][v] = parabola(
                g(*f, j - 2),
                g(*f, j - 1),
                g(*f, j),
                g(*f, j + 1),
                g(*f, j + 2),
            );
        }
        cost.flops += RECON_FLOPS;
    }

    // Fluxes at interfaces upd.start-1/2 .. upd.end+1/2 (interface i
    // separates zones i-1 and i).
    let mut fluxes = vec![Cons::default(); upd.end - upd.start + 1];
    let mut max_speed = 0.0f64;
    for i in upd.start..=upd.end {
        // Left zone i-1: right-moving characteristic domain.
        let zl = i - 1;
        let sl = at(zl);
        let cl = sl.sound_speed();
        let xl = ((sl.u + cl).max(0.0) * dtdx).min(1.0);
        let c_l = &coef[zl - plo];
        let left = Prim {
            rho: avg_right(c_l[0].0, c_l[0].1, c_l[0].2, xl).max(SMALL),
            u: avg_right(c_l[1].0, c_l[1].1, c_l[1].2, xl),
            v: avg_right(c_l[2].0, c_l[2].1, c_l[2].2, xl),
            p: avg_right(c_l[3].0, c_l[3].1, c_l[3].2, xl).max(SMALL),
        };
        // Right zone i: left-moving characteristic domain.
        let sr = at(i);
        let cr = sr.sound_speed();
        let xr = ((cr - sr.u).max(0.0) * dtdx).min(1.0);
        let c_r = &coef[i - plo];
        let right = Prim {
            rho: avg_left(c_r[0].0, c_r[0].1, c_r[0].2, xr).max(SMALL),
            u: avg_left(c_r[1].0, c_r[1].1, c_r[1].2, xr),
            v: avg_left(c_r[2].0, c_r[2].1, c_r[2].2, xr),
            p: avg_left(c_r[3].0, c_r[3].1, c_r[3].2, xr).max(SMALL),
        };
        let resolved = riemann(&left, &right);
        fluxes[i - upd.start] = flux(&resolved);
        max_speed = max_speed.max(sl.u.abs() + cl).max(sr.u.abs() + cr);
        cost.flops += TRACE_FLOPS + RIEMANN_FLOPS;
        cost.divsqrt += RIEMANN_DIVSQRT;
    }

    // Conservative update.
    for j in upd.clone() {
        // Fluxes were computed for interfaces upd.start ..= upd.end,
        // which covers both faces of every updated zone.
        let fl = fluxes[j - upd.start];
        let fr = fluxes[j + 1 - upd.start];
        let s = &mut strip[j];
        s.rho -= dtdx * (fr.rho - fl.rho);
        s.mu -= dtdx * (fr.mu - fl.mu);
        s.mv -= dtdx * (fr.mv - fl.mv);
        s.e -= dtdx * (fr.e - fl.e);
        cost.flops += UPDATE_FLOPS;
        cost.work_accesses += WORK_PER_ZONE;
    }

    (max_speed, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, s: Prim) -> Vec<Cons> {
        vec![s.to_cons(); n]
    }

    #[test]
    fn uniform_flow_is_preserved() {
        let s = Prim {
            rho: 1.0,
            u: 0.7,
            v: -0.3,
            p: 2.0,
        };
        let mut strip = uniform(32, s);
        let before = strip.clone();
        sweep_strip(&mut strip, 4..28, 0.1);
        for (a, b) in strip.iter().zip(&before) {
            assert!((a.rho - b.rho).abs() < 1e-12);
            assert!((a.mu - b.mu).abs() < 1e-12);
            assert!((a.e - b.e).abs() < 1e-12);
        }
    }

    #[test]
    fn mass_is_conserved_interior() {
        // A blob advecting: total mass over the updated zones changes
        // only by boundary fluxes; with symmetric far-field states the
        // interior sum is stable to machine precision when fluxes at
        // both ends are equal.
        let s = Prim {
            rho: 1.0,
            u: 0.0,
            v: 0.0,
            p: 1.0,
        };
        let mut strip = uniform(40, s);
        // Central density bump at rest.
        for c in strip.iter_mut().take(22).skip(18) {
            *c = Prim {
                rho: 2.0,
                u: 0.0,
                v: 0.0,
                p: 1.0,
            }
            .to_cons();
        }
        let total0: f64 = strip.iter().map(|c| c.rho).sum();
        sweep_strip(&mut strip, 4..36, 0.05);
        let total1: f64 = strip.iter().map(|c| c.rho).sum();
        // Boundary fluxes are the uniform-state fluxes (zero mass flux
        // since u = 0 far from the bump).
        assert!((total1 - total0).abs() < 1e-10, "{total0} -> {total1}");
    }

    #[test]
    fn parabola_is_monotone() {
        // Monotone data must produce interface values within the
        // neighboring cell averages.
        let vals = [1.0, 2.0, 4.0, 8.0, 16.0];
        let (al, ar, _) = parabola(vals[0], vals[1], vals[2], vals[3], vals[4]);
        assert!(al >= vals[1] && al <= vals[2], "al = {al}");
        assert!(ar >= vals[2] && ar <= vals[3], "ar = {ar}");
    }

    #[test]
    fn parabola_flattens_extrema() {
        let (al, ar, a6) = parabola(1.0, 2.0, 5.0, 2.0, 1.0);
        assert_eq!(al, 5.0);
        assert_eq!(ar, 5.0);
        assert_eq!(a6, 0.0);
    }

    #[test]
    fn shock_tube_moves_right() {
        // High pressure left, low right: a shock travels right,
        // interface mass flux is positive.
        let l = Prim {
            rho: 1.0,
            u: 0.0,
            v: 0.0,
            p: 1.0,
        };
        let r = Prim {
            rho: 0.125,
            u: 0.0,
            v: 0.0,
            p: 0.1,
        };
        let mut strip: Vec<Cons> = (0..40)
            .map(|j| if j < 20 { l.to_cons() } else { r.to_cons() })
            .collect();
        sweep_strip(&mut strip, 4..36, 0.1);
        // Gas starts moving rightward on both sides of the interface
        // (rarefaction accelerates the left zone, the shock the right
        // one); more distant zones are untouched after one sweep.
        assert!(
            strip[19].mu > 0.0,
            "left-of-interface momentum {}",
            strip[19].mu
        );
        assert!(
            strip[20].mu > 0.0,
            "right-of-interface momentum {}",
            strip[20].mu
        );
        assert!(strip[30].mu.abs() < 1e-12, "distant zone disturbed");
    }

    #[test]
    fn costs_scale_with_zones() {
        let s = Prim {
            rho: 1.0,
            u: 0.1,
            v: 0.0,
            p: 1.0,
        };
        let mut a = uniform(40, s);
        let (_, ca) = sweep_strip(&mut a, 4..36, 0.05);
        let mut b = uniform(24, s);
        let (_, cb) = sweep_strip(&mut b, 4..20, 0.05);
        assert!(ca.flops > cb.flops);
        assert!(ca.divsqrt > cb.divsqrt);
        assert!(ca.work_accesses == 32 * 45 && cb.work_accesses == 16 * 45);
    }

    #[test]
    #[should_panic(expected = "stencil out of bounds")]
    fn rejects_insufficient_ghosts() {
        let s = Prim {
            rho: 1.0,
            u: 0.0,
            v: 0.0,
            p: 1.0,
        };
        let mut strip = uniform(16, s);
        sweep_strip(&mut strip, 2..14, 0.1);
    }
}
